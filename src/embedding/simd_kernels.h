// SIMD distance-kernel layer with runtime CPU dispatch.
//
// Every semantic-cache lookup funnels through Sine's stage-one ANN probe,
// so per-candidate similarity cost is the hottest multiplier in the serving
// path.  This layer provides the vectorized kernels FAISS supplies in the
// paper's stack: single-query dot / squared-L2, plus *batched* kernels that
// score one query against N rows per call with register blocking and
// software prefetch.
//
// Dispatch: the best variant compiled into the binary AND supported by the
// running CPU is resolved once on first use (AVX-512 > AVX2+FMA on x86-64,
// NEON on aarch64, scalar everywhere).  The CORTEX_SIMD env var
// (scalar|avx2|avx512|neon) pins a variant for testing and A/B runs; tests
// may also swap variants in-process via ForceVariant().
//
// Numerics: the scalar kernels accumulate in double and are bit-identical
// to the historical vector_ops loops, so CORTEX_SIMD=scalar reproduces
// pre-SIMD results exactly.  SIMD variants accumulate in float lanes and
// agree with scalar to ~1e-6 relative (test_vector_ops locks this in).
//
// This is the ONLY place in the tree allowed to include <immintrin.h> /
// <arm_neon.h> (enforced by scripts/cortex_lint.py rule `simd-intrinsics`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cortex::simd {

enum class Variant : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,    // AVX2 + FMA, x86-64
  kAvx512 = 2,  // AVX-512F, x86-64
  kNeon = 3,    // aarch64
};

const char* VariantName(Variant v) noexcept;

// Raw kernel table.  `stride` is the float distance between consecutive
// rows (>= dim; slab rows are padded for alignment); every kernel reads
// exactly `dim` floats per row — padding is never touched.
struct KernelSet {
  double (*dot)(const float* a, const float* b, std::size_t dim);
  double (*l2sq)(const float* a, const float* b, std::size_t dim);
  // out[i] = dot(query, rows + i*stride) for i in [0, n).
  void (*dot_batch)(const float* query, const float* rows, std::size_t n,
                    std::size_t stride, std::size_t dim, float* out);
  // out[i] = dot(query, rows[i]); rows scattered (slab/graph gather path),
  // with software prefetch of upcoming rows.
  void (*dot_rows)(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out);
  // out[i] = ||query - (rows + i*stride)||^2.
  void (*l2sq_batch)(const float* query, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out);

  // Quantized scan-tier kernels (DESIGN.md §13).  int8 rows use symmetric
  // per-row scales (row = scale * q[0..dim)); the query is pre-quantized
  // once per probe with QuantizeRowI8.  The integer dot is exact (i32
  // accumulation, no overflow below dim ~1.3e5), so int8 scores are
  // bit-identical across every variant.  fp16 rows are IEEE binary16;
  // decode is exact, accumulation follows the fp32 kernels' contract
  // (scalar = double accumulation, SIMD = float lanes, ~1e-6 agreement).
  void (*dot_batch_i8)(const std::int8_t* query, float query_scale,
                       const std::int8_t* rows, const float* scales,
                       std::size_t n, std::size_t stride, std::size_t dim,
                       float* out);
  void (*dot_rows_i8)(const std::int8_t* query, float query_scale,
                      const std::int8_t* const* rows, const float* scales,
                      std::size_t n, std::size_t dim, float* out);
  void (*dot_batch_f16)(const float* query, const std::uint16_t* rows,
                        std::size_t n, std::size_t stride, std::size_t dim,
                        float* out);
  void (*dot_rows_f16)(const float* query, const std::uint16_t* const* rows,
                       std::size_t n, std::size_t dim, float* out);

  // Multi-query (mq) kernels for the cross-request batching pipeline
  // (DESIGN.md §14): score `nq` queries — query q at queries + q*qstride,
  // qstride in elements — against the same n rows in one pass, writing
  // out[q*n + i].  Rows iterate in the OUTER loop (same block boundaries
  // as the single-query kernels) with queries inner, so each row block is
  // read from memory once per BATCH instead of once per query.  The
  // per-(query,row) arithmetic reuses the single-query primitives
  // verbatim, so every score is bitwise identical to the corresponding
  // sequential kernel on the same variant.
  void (*dot_batch_mq)(const float* queries, std::size_t nq,
                       std::size_t qstride, const float* rows, std::size_t n,
                       std::size_t stride, std::size_t dim, float* out);
  void (*l2sq_batch_mq)(const float* queries, std::size_t nq,
                        std::size_t qstride, const float* rows, std::size_t n,
                        std::size_t stride, std::size_t dim, float* out);
  void (*dot_rows_mq)(const float* queries, std::size_t nq,
                      std::size_t qstride, const float* const* rows,
                      std::size_t n, std::size_t dim, float* out);
  void (*dot_rows_i8_mq)(const std::int8_t* queries,
                         const float* query_scales, std::size_t nq,
                         std::size_t qstride, const std::int8_t* const* rows,
                         const float* scales, std::size_t n, std::size_t dim,
                         float* out);
  void (*dot_rows_f16_mq)(const float* queries, std::size_t nq,
                          std::size_t qstride,
                          const std::uint16_t* const* rows, std::size_t n,
                          std::size_t dim, float* out);
};

// ---------------------------------------------------------------------------
// Quantized row encoding.  Encoding is ALWAYS software-scalar so stored
// bytes are identical whatever variant is active; only decoding happens in
// SIMD lanes (and is exact, so it cannot diverge).

// IEEE binary16 conversion, round-to-nearest-even.  F16ToF32 is exact and
// bit-identical to hardware VCVTPH2PS on every finite input.
std::uint16_t F32ToF16(float f) noexcept;
float F16ToF32(std::uint16_t h) noexcept;

// Symmetric per-row int8 quantization: out[i] = round(v[i] * 127 / amax),
// clamped to [-127, 127]; returns the scale (amax / 127, or 0 for an
// all-zero row — the dot of a zero-scale row is exactly 0).
float QuantizeRowI8(std::span<const float> v, std::int8_t* out) noexcept;

// True when `v` is both compiled into this binary and runnable on this CPU.
bool VariantSupported(Variant v) noexcept;
// All supported variants, scalar first.
std::vector<Variant> SupportedVariants();
// The fastest supported variant.
Variant BestSupportedVariant() noexcept;

// The active dispatch decision: BestSupportedVariant() unless CORTEX_SIMD
// pins one.  Resolved once on first use; CHECK-fails on an unknown or
// unsupported CORTEX_SIMD value.
Variant ActiveVariant() noexcept;
const KernelSet& ActiveKernels() noexcept;

// Kernel table for a specific variant; CHECK-fails unless supported.
const KernelSet& KernelsFor(Variant v);

// Test/bench hook: swaps the active table in-process.  Returns false (and
// changes nothing) when the variant is unsupported.  Not thread-safe —
// call only while no concurrent searches run.
bool ForceVariant(Variant v) noexcept;

// ---------------------------------------------------------------------------
// Dispatching convenience wrappers (the names the rest of the tree uses).

// Inner product.  On the unit vectors the VectorIndex contract guarantees,
// this IS the cosine similarity — callers must not renormalize.
inline double DotUnit(std::span<const float> a,
                      std::span<const float> b) noexcept {
  return ActiveKernels().dot(a.data(), b.data(), a.size());
}

inline double L2Sq(std::span<const float> a,
                   std::span<const float> b) noexcept {
  return ActiveKernels().l2sq(a.data(), b.data(), a.size());
}

// Scores `query` against n contiguous rows (row i at rows + i*dim).
inline void DotBatch(std::span<const float> query, const float* rows,
                     std::size_t n, std::size_t dim, float* out) noexcept {
  ActiveKernels().dot_batch(query.data(), rows, n, dim, dim, out);
}

// Strided flavour for padded slab storage.
inline void DotBatchStrided(std::span<const float> query, const float* rows,
                            std::size_t n, std::size_t stride,
                            float* out) noexcept {
  ActiveKernels().dot_batch(query.data(), rows, n, stride, query.size(), out);
}

// Gather flavour: row pointers, e.g. HNSW neighbour expansion.
inline void DotRows(std::span<const float> query, const float* const* rows,
                    std::size_t n, float* out) noexcept {
  ActiveKernels().dot_rows(query.data(), rows, n, query.size(), out);
}

inline void L2SqBatch(std::span<const float> query, const float* rows,
                      std::size_t n, std::size_t stride, float* out) noexcept {
  ActiveKernels().l2sq_batch(query.data(), rows, n, stride, query.size(),
                             out);
}

// Quantized flavours; `query_i8`/`query_scale` come from one QuantizeRowI8
// call per probe.
inline void DotBatchI8(const std::int8_t* query_i8, float query_scale,
                       const std::int8_t* rows, const float* scales,
                       std::size_t n, std::size_t stride, std::size_t dim,
                       float* out) noexcept {
  ActiveKernels().dot_batch_i8(query_i8, query_scale, rows, scales, n,
                               stride, dim, out);
}

inline void DotRowsI8(const std::int8_t* query_i8, float query_scale,
                      const std::int8_t* const* rows, const float* scales,
                      std::size_t n, std::size_t dim, float* out) noexcept {
  ActiveKernels().dot_rows_i8(query_i8, query_scale, rows, scales, n, dim,
                              out);
}

inline void DotBatchF16(std::span<const float> query,
                        const std::uint16_t* rows, std::size_t n,
                        std::size_t stride, float* out) noexcept {
  ActiveKernels().dot_batch_f16(query.data(), rows, n, stride, query.size(),
                                out);
}

inline void DotRowsF16(std::span<const float> query,
                       const std::uint16_t* const* rows, std::size_t n,
                       float* out) noexcept {
  ActiveKernels().dot_rows_f16(query.data(), rows, n, query.size(), out);
}

// Multi-query wrappers (see the KernelSet mq contract above): matrices,
// not spans — query q lives at queries + q*qstride, score (q, i) lands at
// out[q*n + i].
inline void DotBatchMq(const float* queries, std::size_t nq,
                       std::size_t qstride, const float* rows, std::size_t n,
                       std::size_t stride, std::size_t dim,
                       float* out) noexcept {
  ActiveKernels().dot_batch_mq(queries, nq, qstride, rows, n, stride, dim,
                               out);
}

inline void L2SqBatchMq(const float* queries, std::size_t nq,
                        std::size_t qstride, const float* rows, std::size_t n,
                        std::size_t stride, std::size_t dim,
                        float* out) noexcept {
  ActiveKernels().l2sq_batch_mq(queries, nq, qstride, rows, n, stride, dim,
                                out);
}

inline void DotRowsMq(const float* queries, std::size_t nq,
                      std::size_t qstride, const float* const* rows,
                      std::size_t n, std::size_t dim, float* out) noexcept {
  ActiveKernels().dot_rows_mq(queries, nq, qstride, rows, n, dim, out);
}

inline void DotRowsI8Mq(const std::int8_t* queries, const float* query_scales,
                        std::size_t nq, std::size_t qstride,
                        const std::int8_t* const* rows, const float* scales,
                        std::size_t n, std::size_t dim, float* out) noexcept {
  ActiveKernels().dot_rows_i8_mq(queries, query_scales, nq, qstride, rows,
                                 scales, n, dim, out);
}

inline void DotRowsF16Mq(const float* queries, std::size_t nq,
                         std::size_t qstride, const std::uint16_t* const* rows,
                         std::size_t n, std::size_t dim,
                         float* out) noexcept {
  ActiveKernels().dot_rows_f16_mq(queries, nq, qstride, rows, n, dim, out);
}

}  // namespace cortex::simd
