// Live observability metrics (DESIGN.md §8): a process-wide registry of
// named Counter / Gauge / AtomicHistogram instruments that the serving
// path updates on every request and that can be read *while serving* —
// the counterpart of the offline sim/metrics.h aggregation.
//
// Design targets, in order:
//   1. hot-path updates never contend: counters are striped across
//      cache-line-padded relaxed-atomic cells (summed on read), histogram
//      buckets are relaxed atomics — safe and clean under TSan;
//   2. reads are always available and never block writers: Snapshot()
//      copies instrument state without stopping the world, so totals are
//      per-instrument-consistent, not globally atomic;
//   3. instruments are cheap handles: Get*() once at construction time,
//      then update through the pointer forever (registration takes a
//      mutex, updates never do).
//
// Naming convention: `cortex_<layer>_<metric>` (e.g. cortex_engine_hits,
// cortex_server_queue_depth, cortex_cache_ttl_expiries); histograms of
// durations end in `_seconds`.  Names must not contain whitespace, '=',
// or control characters — both exposition formats key on that.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/ranked_mutex.h"
#include "util/thread_annotations.h"

namespace cortex::telemetry {

// Monotonic wall-clock seconds since a process-wide epoch.  Every
// telemetry timestamp (span starts, histogram samples) uses this single
// scale so spans recorded by different layers line up, independent of any
// injected engine clock.
double WallSeconds() noexcept;

namespace internal {

// Stable small index for the calling thread, used to stripe counter
// increments across cells.  Thread ids are assigned once, round-robin;
// two threads may share a cell (the stripe is a contention optimisation,
// not a correctness requirement — cells are atomics either way).
std::size_t ThreadStripe() noexcept;

// C++20 has std::atomic<double>::fetch_add, but a CAS loop keeps us off
// the less-travelled codegen paths of both compilers.
inline void AtomicAdd(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

inline void AtomicMin(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMax(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// Number of independent increment cells per counter.  Power of two; 16
// covers the worker-pool sizes we run while keeping a counter at 1 KiB.
inline constexpr std::size_t kCounterStripes = 16;

// Monotonic counter.  Inc() is one relaxed fetch_add on the calling
// thread's stripe; Value() sums all stripes (exact — increments are never
// lost, only the read is a momentary snapshot).
class Counter {
 public:
  void Inc(std::uint64_t n = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[internal::ThreadStripe() & (kCounterStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCounterStripes> cells_;
  const std::atomic<bool>* enabled_;
};

// Point-in-time value (queue depth, resident tokens, rate-limiter
// tokens).  Set() overwrites; Add() accumulates deltas from many threads.
class Gauge {
 public:
  void Set(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    internal::AtomicAdd(value_, delta);
  }
  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

// Bucket geometry for AtomicHistogram — the same fixed-geometric scheme
// as util/stats.h Histogram (bucket 0 holds values <= min_value, bucket i
// holds values <= min_value * growth^i), but with the bucket count fixed
// up front so the array can be relaxed atomics: values above max_value
// clamp into the last bucket.
struct HistogramOptions {
  double min_value = 1e-6;  // seconds; ~1 us resolution floor
  double growth = 1.02;     // ~2% relative error per bucket
  double max_value = 3600.0;
};

// Read-side copy of a histogram: plain data, mergeable across shards /
// processes with matching geometry, quantiles exact to bucket resolution.
struct HistogramSnapshot {
  double min_value = 0.0;
  double log_growth = 0.0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  // q in [0, 1]; a value v such that ~q of samples are <= v.
  double Quantile(double q) const noexcept;
  double p50() const noexcept { return Quantile(0.50); }
  double p99() const noexcept { return Quantile(0.99); }

  // CHECK-fails on mismatched bucket geometry (same contract as
  // util/stats.h Histogram::Merge).
  void Merge(const HistogramSnapshot& other);

  // One-line summary, e.g. "n=100 mean=1.2 p50=1.1 p99=3.4 max=5.0".
  std::string Summary() const;
};

// Fixed-geometric-bucket histogram with relaxed-atomic buckets: Observe()
// is one bucket fetch_add plus sum/min/max CAS updates; Snapshot() copies
// the buckets without blocking writers.  `count` is derived from the
// bucket array, so a snapshot's quantiles are always self-consistent.
class AtomicHistogram {
 public:
  void Observe(double value) noexcept;
  HistogramSnapshot Snapshot() const;
  const HistogramOptions& options() const noexcept { return options_; }

 private:
  friend class MetricRegistry;
  AtomicHistogram(HistogramOptions options, const std::atomic<bool>* enabled);

  std::size_t BucketFor(double value) const noexcept;

  HistogramOptions options_;
  double log_growth_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  const std::atomic<bool>* enabled_;
};

// Point-in-time copy of a whole registry, renderable as Prometheus-style
// text or flat key=value pairs (the extended STATS wire response).
struct TelemetrySnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramSnapshot histogram;
  };
  std::vector<Entry> entries;  // sorted by name

  // Prometheus-style exposition: `# TYPE` comments, `name value` lines,
  // histograms as count/sum/quantile/min/max series.
  std::string RenderText() const;

  // Flat `key=value` pairs for the STATS wire response: counters and
  // gauges one pair each, histograms expanded to
  // name_count/_mean/_p50/_p99/_max.
  void AppendKeyValues(
      std::vector<std::pair<std::string, std::string>>* out) const;
};

// Named-instrument registry.  Get*() registers on first use and returns
// the existing instrument on every later call (CHECK-fails if the name is
// already registered as a different kind); returned pointers stay valid
// for the registry's lifetime.  set_enabled(false) turns every update
// into a single relaxed load + branch, for overhead A/B runs.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  AtomicHistogram* GetHistogram(std::string_view name,
                                HistogramOptions options = {});

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  TelemetrySnapshot Snapshot() const;

 private:
  struct Instrument {
    TelemetrySnapshot::Kind kind = TelemetrySnapshot::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<AtomicHistogram> histogram;
  };

  Instrument& Register(std::string_view name, TelemetrySnapshot::Kind kind)
      REQUIRES(mu_);

  // Registration-path lock only (updates go through atomic instrument
  // handles).  kLeaf: nothing is ever acquired under it, and it may be
  // taken while any serving-tier lock is held.
  mutable RankedMutex mu_{LockRank::kLeaf, "telemetry.registry_mu"};
  // Ordered map: snapshots come out name-sorted, and node stability keeps
  // instrument pointers valid across later registrations.
  std::map<std::string, Instrument, std::less<>> instruments_ GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
};

}  // namespace cortex::telemetry
