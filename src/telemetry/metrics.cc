#include "telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace cortex::telemetry {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.6g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (c == '=' || c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
        c == '"' || c == '{' || c == '}') {
      return false;
    }
  }
  return true;
}

}  // namespace

double WallSeconds() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

namespace internal {

std::size_t ThreadStripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// AtomicHistogram

AtomicHistogram::AtomicHistogram(HistogramOptions options,
                                 const std::atomic<bool>* enabled)
    : options_(options),
      log_growth_(std::log(options.growth)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      enabled_(enabled) {
  CHECK_GT(options_.min_value, 0.0);
  CHECK_GT(options_.growth, 1.0);
  CHECK_GT(options_.max_value, options_.min_value);
  // +2: bucket 0 (<= min_value) and one clamp bucket past max_value.
  const std::size_t top =
      static_cast<std::size_t>(std::log(options_.max_value /
                                        options_.min_value) /
                               log_growth_) +
      2;
  buckets_ = std::vector<std::atomic<std::uint64_t>>(top + 1);
}

std::size_t AtomicHistogram::BucketFor(double value) const noexcept {
  // Same geometry as util/stats.h Histogram::BucketFor, with the index
  // clamped into the fixed array.
  if (value <= options_.min_value) return 0;
  const double b = std::log(value / options_.min_value) / log_growth_;
  const auto bucket = static_cast<std::size_t>(b) + 1;
  return std::min(bucket, buckets_.size() - 1);
}

void AtomicHistogram::Observe(double value) noexcept {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  value = std::max(value, 0.0);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(sum_, value);
  internal::AtomicMin(min_, value);
  internal::AtomicMax(max_, value);
}

HistogramSnapshot AtomicHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.min_value = options_.min_value;
  snap.log_growth = log_growth_;
  snap.buckets.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

double HistogramSnapshot::Quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target && buckets[i] > 0) {
      const double upper =
          i == 0 ? min_value
                 : min_value * std::exp(log_growth * static_cast<double>(i));
      return std::min(upper, max);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  CHECK(min_value == other.min_value && log_growth == other.log_growth)
      << "merging histogram snapshots with different bucket layouts";
  if (other.count == 0) return;
  if (other.buckets.size() > buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

std::string HistogramSnapshot::Summary() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean() << " p50=" << p50()
     << " p99=" << p99() << " max=" << max;
  return os.str();
}

// ---------------------------------------------------------------------------
// MetricRegistry

MetricRegistry::Instrument& MetricRegistry::Register(
    std::string_view name, TelemetrySnapshot::Kind kind) {
  CHECK(ValidMetricName(name)) << "bad metric name: " << name;
  const auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    CHECK(it->second.kind == kind)
        << "metric " << name << " already registered as a different kind";
    return it->second;
  }
  Instrument& inst = instruments_[std::string(name)];
  inst.kind = kind;
  return inst;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  Instrument& inst = Register(name, TelemetrySnapshot::Kind::kCounter);
  if (!inst.counter) inst.counter.reset(new Counter(&enabled_));
  return inst.counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  Instrument& inst = Register(name, TelemetrySnapshot::Kind::kGauge);
  if (!inst.gauge) inst.gauge.reset(new Gauge(&enabled_));
  return inst.gauge.get();
}

AtomicHistogram* MetricRegistry::GetHistogram(std::string_view name,
                                              HistogramOptions options) {
  MutexLock lock(mu_);
  Instrument& inst = Register(name, TelemetrySnapshot::Kind::kHistogram);
  if (!inst.histogram) {
    inst.histogram.reset(new AtomicHistogram(options, &enabled_));
  }
  return inst.histogram.get();
}

TelemetrySnapshot MetricRegistry::Snapshot() const {
  TelemetrySnapshot snap;
  MutexLock lock(mu_);
  snap.entries.reserve(instruments_.size());
  for (const auto& [name, inst] : instruments_) {
    TelemetrySnapshot::Entry entry;
    entry.name = name;
    entry.kind = inst.kind;
    switch (inst.kind) {
      case TelemetrySnapshot::Kind::kCounter:
        entry.counter_value = inst.counter->Value();
        break;
      case TelemetrySnapshot::Kind::kGauge:
        entry.gauge_value = inst.gauge->Value();
        break;
      case TelemetrySnapshot::Kind::kHistogram:
        entry.histogram = inst.histogram->Snapshot();
        break;
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Exposition

std::string TelemetrySnapshot::RenderText() const {
  std::string out;
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + e.name + " counter\n";
        out += e.name + " " + std::to_string(e.counter_value) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e.name + " gauge\n";
        out += e.name + " " + FormatDouble(e.gauge_value) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = e.histogram;
        out += "# TYPE " + e.name + " histogram\n";
        out += e.name + "_count " + std::to_string(h.count) + "\n";
        out += e.name + "_sum " + FormatDouble(h.sum) + "\n";
        for (const auto& [label, q] :
             {std::pair<const char*, double>{"0.5", 0.50},
              {"0.9", 0.90},
              {"0.99", 0.99}}) {
          out += e.name + "{quantile=\"" + label + "\"} " +
                 FormatDouble(h.Quantile(q)) + "\n";
        }
        out += e.name + "_min " + FormatDouble(h.min) + "\n";
        out += e.name + "_max " + FormatDouble(h.max) + "\n";
        break;
      }
    }
  }
  return out;
}

void TelemetrySnapshot::AppendKeyValues(
    std::vector<std::pair<std::string, std::string>>* out) const {
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Kind::kCounter:
        out->emplace_back(e.name, std::to_string(e.counter_value));
        break;
      case Kind::kGauge:
        out->emplace_back(e.name, FormatDouble(e.gauge_value));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = e.histogram;
        out->emplace_back(e.name + "_count", std::to_string(h.count));
        out->emplace_back(e.name + "_mean", FormatDouble(h.mean()));
        out->emplace_back(e.name + "_p50", FormatDouble(h.p50()));
        out->emplace_back(e.name + "_p99", FormatDouble(h.p99()));
        out->emplace_back(e.name + "_max", FormatDouble(h.max));
        break;
      }
    }
  }
}

}  // namespace cortex::telemetry
