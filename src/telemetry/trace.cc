#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace cortex::telemetry {

const char* PhaseName(TracePhase phase) noexcept {
  switch (phase) {
    case TracePhase::kQueueWait:
      return "queue_wait";
    case TracePhase::kParse:
      return "parse";
    case TracePhase::kEmbed:
      return "embed";
    case TracePhase::kAnnProbe:
      return "ann_probe";
    case TracePhase::kJudger:
      return "judger";
    case TracePhase::kCommit:
      return "commit";
    case TracePhase::kRemoteFetch:
      return "remote_fetch";
    case TracePhase::kInsert:
      return "insert";
    case TracePhase::kEviction:
      return "eviction";
  }
  return "?";
}

const char* OpName(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kOther:
      return "OTHER";
    case TraceOp::kLookup:
      return "LOOKUP";
    case TraceOp::kInsert:
      return "INSERT";
    case TraceOp::kStats:
      return "STATS";
    case TraceOp::kPing:
      return "PING";
    case TraceOp::kDumpTrace:
      return "DUMPTRACE";
  }
  return "?";
}

const char* OutcomeName(TraceOutcome outcome) noexcept {
  switch (outcome) {
    case TraceOutcome::kUnknown:
      return "unknown";
    case TraceOutcome::kHit:
      return "hit";
    case TraceOutcome::kMiss:
      return "miss";
    case TraceOutcome::kOk:
      return "ok";
    case TraceOutcome::kReject:
      return "reject";
    case TraceOutcome::kBusy:
      return "busy";
    case TraceOutcome::kError:
      return "error";
  }
  return "?";
}

void RequestTrace::AddSpan(TracePhase phase, double start_sec,
                           double duration_sec) {
  if (span_count < kMaxTraceSpans) {
    spans[span_count] = {phase, start_sec, duration_sec};
  }
  ++span_count;
}

void RequestTrace::SetQuery(std::string_view q) {
  const std::size_t n = std::min(q.size(), kTraceQueryBytes);
  std::copy_n(q.data(), n, query.data());
  query_len = static_cast<std::uint8_t>(n);
}

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::Record(const RequestTrace& trace) noexcept {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];

  // Claim the slot: even -> odd.  A concurrent writer (ring wrapped
  // within one in-flight batch) makes the CAS fail; drop rather than
  // block — the recorder is diagnostics, not ground truth.
  std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  if ((v & 1) != 0 ||
      !slot.version.compare_exchange_strong(v, v + 1,
                                            std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  slot.seq.store(seq, std::memory_order_relaxed);
  slot.op.store(static_cast<std::uint8_t>(trace.op),
                std::memory_order_relaxed);
  slot.outcome.store(static_cast<std::uint8_t>(trace.outcome),
                     std::memory_order_relaxed);
  slot.shard.store(trace.shard, std::memory_order_relaxed);
  slot.start.store(trace.start, std::memory_order_relaxed);
  slot.total.store(trace.total, std::memory_order_relaxed);
  const auto spans =
      std::min<std::uint32_t>(trace.span_count, kMaxTraceSpans);
  slot.span_count.store(spans, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < spans; ++i) {
    slot.span_phase[i].store(static_cast<std::uint8_t>(trace.spans[i].phase),
                             std::memory_order_relaxed);
    slot.span_start[i].store(trace.spans[i].start, std::memory_order_relaxed);
    slot.span_duration[i].store(trace.spans[i].duration,
                                std::memory_order_relaxed);
  }
  slot.query_len.store(trace.query_len, std::memory_order_relaxed);
  for (std::size_t i = 0; i < trace.query_len; ++i) {
    slot.query[i].store(trace.query[i], std::memory_order_relaxed);
  }

  slot.version.store(v + 2, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(const Slot& slot, RequestTrace* out) noexcept {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written / mid-write

    out->seq = slot.seq.load(std::memory_order_relaxed);
    out->op = static_cast<TraceOp>(slot.op.load(std::memory_order_relaxed));
    out->outcome = static_cast<TraceOutcome>(
        slot.outcome.load(std::memory_order_relaxed));
    out->shard = slot.shard.load(std::memory_order_relaxed);
    out->start = slot.start.load(std::memory_order_relaxed);
    out->total = slot.total.load(std::memory_order_relaxed);
    out->span_count = std::min<std::uint32_t>(
        slot.span_count.load(std::memory_order_relaxed), kMaxTraceSpans);
    for (std::uint32_t i = 0; i < out->span_count; ++i) {
      out->spans[i].phase = static_cast<TracePhase>(
          slot.span_phase[i].load(std::memory_order_relaxed));
      out->spans[i].start =
          slot.span_start[i].load(std::memory_order_relaxed);
      out->spans[i].duration =
          slot.span_duration[i].load(std::memory_order_relaxed);
    }
    out->query_len = std::min<std::uint8_t>(
        slot.query_len.load(std::memory_order_relaxed), kTraceQueryBytes);
    for (std::size_t i = 0; i < out->query_len; ++i) {
      out->query[i] = slot.query[i].load(std::memory_order_relaxed);
    }

    // Canonical seqlock validation: the acquire fence keeps the payload
    // loads above from being reordered past the second version read.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) == v1) return true;
  }
  return false;
}

std::vector<RequestTrace> FlightRecorder::Snapshot(
    std::size_t max_entries) const {
  std::vector<RequestTrace> traces;
  traces.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    RequestTrace trace;
    if (ReadSlot(slot, &trace)) traces.push_back(trace);
  }
  std::sort(traces.begin(), traces.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.seq > b.seq;  // newest first
            });
  if (traces.size() > max_entries) traces.resize(max_entries);
  return traces;
}

// ---------------------------------------------------------------------------
// Rendering

std::string RenderTraceText(const std::vector<RequestTrace>& traces) {
  std::string out;
  char buf[64];
  const auto ms = [&buf](double seconds) {
    std::snprintf(buf, sizeof buf, "%.3fms", seconds * 1e3);
    return std::string(buf);
  };
  for (const RequestTrace& t : traces) {
    std::snprintf(buf, sizeof buf, "#%llu ",
                  static_cast<unsigned long long>(t.seq));
    out += buf;
    out += OpName(t.op);
    out += ' ';
    out += OutcomeName(t.outcome);
    std::snprintf(buf, sizeof buf, " shard=%u t=%.3fs total=",
                  static_cast<unsigned>(t.shard), t.start);
    out += buf;
    out += ms(t.total);
    out += " spans[";
    const auto spans = std::min<std::uint32_t>(t.span_count, kMaxTraceSpans);
    for (std::uint32_t i = 0; i < spans; ++i) {
      if (i > 0) out += ' ';
      out += PhaseName(t.spans[i].phase);
      out += '=';
      out += ms(t.spans[i].duration);
    }
    out += ']';
    if (t.query_len > 0) {
      out += " q=\"";
      out.append(t.query_view());
      out += '"';
    }
    out += '\n';
  }
  return out;
}

}  // namespace cortex::telemetry
