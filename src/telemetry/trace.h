// Per-request trace spans and the flight recorder (DESIGN.md §8).
//
// A RequestTrace is a fixed-size timeline of named phases (queue wait,
// embed, ANN probe, judger, remote fetch, insert/commit, eviction work)
// filled in by whichever layer owns each phase while a request is being
// served; when the request completes, the server publishes the finished
// trace into a FlightRecorder — a fixed-capacity ring holding the last N
// completed traces for post-hoc debugging of tail latency (DUMPTRACE on
// the wire).
//
// The recorder is lock-free on the write side: a writer claims a slot
// with one CAS on the slot's seqlock version (odd = being written; a
// losing writer drops its trace and counts it), stores the payload with
// relaxed atomics, and publishes with a release store of the version.
// Readers validate version-before == version-after and retry a bounded
// number of times.  Every payload field is a std::atomic, so concurrent
// read/write is well-defined (and TSan-clean) even when the version check
// forces a retry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cortex::telemetry {

enum class TracePhase : std::uint8_t {
  kQueueWait,    // frame decoded -> execution started
  kParse,        // request grammar parse
  kEmbed,        // query embedding
  kAnnProbe,     // stage-1 ANN search
  kJudger,       // stage-2 judger validation
  kCommit,       // lookup commit (counters, frequency bump)
  kRemoteFetch,  // client-side ground-truth fetch on a miss
  kInsert,       // cache insert
  kEviction,     // TTL purge + eviction work inside an insert
};
const char* PhaseName(TracePhase phase) noexcept;

enum class TraceOp : std::uint8_t {
  kOther,
  kLookup,
  kInsert,
  kStats,
  kPing,
  kDumpTrace,
};
const char* OpName(TraceOp op) noexcept;

enum class TraceOutcome : std::uint8_t {
  kUnknown,
  kHit,
  kMiss,
  kOk,
  kReject,
  kBusy,
  kError,
};
const char* OutcomeName(TraceOutcome outcome) noexcept;

inline constexpr std::size_t kMaxTraceSpans = 8;
inline constexpr std::size_t kTraceQueryBytes = 48;

struct TraceSpan {
  TracePhase phase = TracePhase::kQueueWait;
  double start = 0.0;     // WallSeconds()
  double duration = 0.0;  // seconds
};

// Plain working storage for one in-flight request; cheap to keep on the
// stack.  Spans past kMaxTraceSpans are dropped (span_count keeps the
// true attempted count).
struct RequestTrace {
  std::uint64_t seq = 0;  // assigned by FlightRecorder::Record
  TraceOp op = TraceOp::kOther;
  TraceOutcome outcome = TraceOutcome::kUnknown;
  std::uint32_t shard = 0;
  double start = 0.0;  // WallSeconds() at frame decode
  double total = 0.0;  // end-to-end seconds
  std::uint32_t span_count = 0;
  std::array<TraceSpan, kMaxTraceSpans> spans{};
  std::array<char, kTraceQueryBytes> query{};
  std::uint8_t query_len = 0;

  void AddSpan(TracePhase phase, double start_sec, double duration_sec);
  // Keeps the first kTraceQueryBytes bytes.
  void SetQuery(std::string_view q);
  std::string_view query_view() const noexcept {
    return {query.data(), query_len};
  }
};

// Fixed-capacity ring of the most recent completed traces.  Record() is
// wait-free for the calling thread (one CAS; drops on the rare slot
// collision).  Snapshot() returns up to `max_entries` traces, newest
// first, skipping slots a writer holds mid-publish.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const RequestTrace& trace) noexcept;
  std::vector<RequestTrace> Snapshot(
      std::size_t max_entries = static_cast<std::size_t>(-1)) const;

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed) -
           dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> version{0};  // seqlock: odd = being written
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint8_t> op{0};
    std::atomic<std::uint8_t> outcome{0};
    std::atomic<std::uint32_t> shard{0};
    std::atomic<double> start{0.0};
    std::atomic<double> total{0.0};
    std::atomic<std::uint32_t> span_count{0};
    std::array<std::atomic<std::uint8_t>, kMaxTraceSpans> span_phase{};
    std::array<std::atomic<double>, kMaxTraceSpans> span_start{};
    std::array<std::atomic<double>, kMaxTraceSpans> span_duration{};
    std::array<std::atomic<char>, kTraceQueryBytes> query{};
    std::atomic<std::uint8_t> query_len{0};
  };

  // True when the slot held a consistent, published trace.
  static bool ReadSlot(const Slot& slot, RequestTrace* out) noexcept;

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// Human-readable multi-line rendering (one line per trace), used by the
// DUMPTRACE wire response and the tools.
std::string RenderTraceText(const std::vector<RequestTrace>& traces);

}  // namespace cortex::telemetry
