// AgentModel: a deterministic simulation of an agentic LLM's
// think->act->observe loop (paper §2.1, Fig. 1).
//
// The workload layer scripts *what* the agent asks (the tool queries and
// the information it needs); this model supplies the serving-side
// behaviour: tagged text output, context growth, token counts, and — via
// ModelSpec — inference latency.  The cache under test only ever sees the
// tagged output stream, exactly as it would with a real model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "llm/model_spec.h"
#include "llm/tags.h"

namespace cortex {

// One scripted tool interaction within a task.
struct ToolStep {
  std::string think;          // reasoning text emitted before the call
  std::string query;          // the tool-call query text
  std::string expected_info;  // ground-truth retrieval result for the query
};

// A complete agent task (one user request end-to-end).
struct AgentTask {
  std::uint64_t id = 0;
  std::string description;        // the user prompt
  std::vector<ToolStep> steps;    // remote interactions, in order
  std::string final_think;
  std::string final_answer;
  // Probability the agent produces the right answer when every observation
  // it received was correct (agents are imperfect even with good data —
  // this is why the paper's vanilla EM is ~0.79, not 1.0).
  double base_correctness = 0.78;
};

// One model "turn": everything generated between two tool observations.
struct AgentTurn {
  std::string text;                       // full tagged output
  std::optional<std::string> tool_query;  // set unless this is the final turn
  std::optional<std::string> answer;      // set on the final turn
  std::size_t prompt_tokens = 0;          // context consumed by this turn
  std::size_t output_tokens = 0;          // tokens generated this turn
};

// Mutable per-task state held by the serving loop.
class AgentSession {
 public:
  explicit AgentSession(AgentTask task);

  const AgentTask& task() const noexcept { return task_; }
  std::size_t step_index() const noexcept { return step_; }
  std::size_t context_tokens() const noexcept { return context_tokens_; }
  bool finished() const noexcept { return finished_; }
  const std::vector<std::string>& observations() const noexcept {
    return observations_;
  }

 private:
  friend class AgentModel;
  AgentTask task_;
  std::size_t step_ = 0;
  std::size_t context_tokens_ = 0;
  std::vector<std::string> observations_;
  bool finished_ = false;
};

class AgentModel {
 public:
  explicit AgentModel(ModelSpec spec = ModelSpec::Agent7B());

  const ModelSpec& spec() const noexcept { return spec_; }

  // Produces the next turn.  `info` must be nullopt on the first call and
  // the observation for the previous tool call afterwards.  Calling after
  // the session finished is a logic error (asserts).
  AgentTurn Next(AgentSession& session,
                 std::optional<std::string> info = std::nullopt) const;

  // Inference latency of a turn at the given GPU compute share.
  double TurnSeconds(const AgentTurn& turn,
                     double compute_fraction = 1.0) const noexcept {
    return InferenceSeconds(spec_, turn.prompt_tokens, turn.output_tokens,
                            compute_fraction);
  }

 private:
  ModelSpec spec_;
};

// Whether the finished task's answer counts as an exact match, given
// whether every observation served to the agent was semantically correct.
// Deterministic in the task id so runs are reproducible.
bool AnswerIsCorrect(const AgentTask& task, bool all_observations_correct);

}  // namespace cortex
