// JudgerModel: the lightweight semantic judger LSM (paper §4.2).
//
// The real system prompts a ~0.6B LLM with (new query, cached query, cached
// result) and reads off a confidence that the cached result answers the new
// query.  Cortex models this as a *calibrated noisy classifier*: the score
// is a logistic transform of evidence that mixes the ground truth (from the
// workload's oracle), the embedding similarity, and lexical overlap, plus
// deterministic pseudo-noise.  This yields:
//   * imperfect but tunable precision/recall — the score distributions for
//     equivalent and non-equivalent pairs overlap, so threshold choice
//     matters and Algorithm 1's precision-curve recalibration is exercised
//     for real;
//   * determinism — judging the same pair twice gives the same score, as a
//     greedy-decoded LLM would.
//
// The same small model doubles as the staticity scorer (paper §4.1) and has
// a prefill-only latency profile (single output token), which is what makes
// GPU co-location viable (§4.4).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "llm/model_spec.h"
#include "util/tokenizer.h"

namespace cortex {

// Ground truth provider, implemented by the workload layer.  The judger
// never sees topic ids directly; it sees the oracle's answer corrupted by
// its own noise model.
class EquivalenceOracle {
 public:
  virtual ~EquivalenceOracle() = default;

  // True if a cached result for `cached_query` is a semantically valid
  // answer to `query`.
  virtual bool Equivalent(std::string_view query,
                          std::string_view cached_query) const = 0;

  // True staticity of the knowledge behind `query` on the paper's 1-10
  // scale (10 = time-invariant fact, 1 = ephemeral).
  virtual double Staticity(std::string_view query) const = 0;
};

struct JudgerOptions {
  // Mean evidence (in logit units) for truly equivalent / non-equivalent
  // pairs.  Wider separation = better classifier.
  double mu_equivalent = 2.4;
  double mu_different = -3.2;
  // Std-dev of the deterministic pseudo-noise added to the evidence.
  double noise_sigma = 1.1;
  // Contribution of auxiliary signals (shifts the evidence).  The
  // embedding term is centred on the IDF-fitted HashedEmbedder's
  // paraphrase/trap boundary (~0.80 cosine).
  double embedding_weight = 0.8;
  double embedding_center = 0.80;
  double embedding_scale = 2.5;
  double lexical_weight = 0.6;
  // Seed for the noise hash; a different seed is a different judger.
  std::uint64_t seed = 0x1c3a11b5ULL;
};

struct JudgeRequest {
  std::string_view query;         // the new query
  std::string_view cached_query;  // key of the candidate SE
  std::string_view cached_result; // value of the candidate SE
  double embedding_similarity = 0.0;  // from the ANN stage
};

class JudgerModel {
 public:
  JudgerModel(const EquivalenceOracle* oracle, JudgerOptions options = {},
              ModelSpec spec = ModelSpec::Judger06B());

  // Confidence in [0, 1] that the cached result answers the query.
  double Judge(const JudgeRequest& request) const;

  // Staticity estimate on [1, 10]: the oracle's truth plus bounded noise.
  double ScoreStaticity(std::string_view query,
                        std::string_view result) const;

  // Prefill-only inference latency for one validation call.
  double JudgeSeconds(const JudgeRequest& request,
                      double compute_fraction = 1.0) const noexcept;

  // Simulated fine-tuning on an annotated set (paper §5: the judger "can be
  // easily fine-tuned ... so its accuracy can be improved with minimal
  // effort").  Training widens the evidence separation and shrinks the
  // noise, bounded so repeated rounds converge rather than diverge.  The
  // effect scales with the number of examples; tiny sets do nothing.
  struct FinetuneReport {
    std::size_t examples_used = 0;
    double mu_equivalent_after = 0.0;
    double mu_different_after = 0.0;
    double noise_sigma_after = 0.0;
  };
  FinetuneReport Finetune(std::size_t num_examples);

  static constexpr std::size_t kMinFinetuneExamples = 64;
  static constexpr double kMaxMuEquivalent = 4.5;
  static constexpr double kMinMuDifferent = -6.0;
  static constexpr double kMinNoiseSigma = 0.5;

  const ModelSpec& spec() const noexcept { return spec_; }
  const JudgerOptions& options() const noexcept { return options_; }

 private:
  double NoiseFor(std::string_view a, std::string_view b,
                  std::uint64_t salt) const noexcept;

  const EquivalenceOracle* oracle_;  // not owned; must outlive the judger
  JudgerOptions options_;
  ModelSpec spec_;
  Tokenizer tokenizer_;
};

}  // namespace cortex
