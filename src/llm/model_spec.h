// Performance specifications of the simulated models.
//
// We model an LLM's serving behaviour with three numbers: prefill rate
// (prompt tokens/s), decode rate (generated tokens/s), and KV-cache bytes
// per resident token.  Defaults approximate the paper's setup: a 7B agent
// and a 0.6B judger/embedder on one H100 (§6.1); the agent's ~0.6 s
// per-request inference (Fig. 11) emerges from these rates and the token
// counts the workload generates.
#pragma once

#include <cstddef>
#include <string>

namespace cortex {

struct ModelSpec {
  std::string name;
  double params_billions = 7.0;
  // Tokens per second at 100% of the GPU.
  double prefill_tokens_per_sec = 16000.0;
  double decode_tokens_per_sec = 220.0;
  // KV-cache footprint per token of context (bytes).
  double kv_bytes_per_token = 160.0 * 1024.0;
  // Fixed per-request overhead (scheduling, tokenisation), seconds.
  double fixed_overhead_sec = 0.004;

  static ModelSpec Agent7B();    // Search-R1-7B-like
  static ModelSpec Coder8B();    // Qwen3-8B-like
  static ModelSpec Judger06B();  // Qwen3-0.6B judger/staticity scorer
  static ModelSpec Embedder06B();
};

// Service time for one inference call given the share of GPU compute the
// model currently holds (compute_fraction in (0, 1]).
double InferenceSeconds(const ModelSpec& spec, std::size_t prompt_tokens,
                        std::size_t output_tokens,
                        double compute_fraction = 1.0) noexcept;

// KV-cache bytes needed to hold a request's context resident.
double KvBytes(const ModelSpec& spec, std::size_t context_tokens) noexcept;

}  // namespace cortex
