#include "llm/agent_model.h"

#include "util/check.h"
#include "util/rng.h"

namespace cortex {

AgentSession::AgentSession(AgentTask task) : task_(std::move(task)) {
  context_tokens_ = ApproxTokenCount(task_.description);
}

AgentModel::AgentModel(ModelSpec spec) : spec_(std::move(spec)) {}

AgentTurn AgentModel::Next(AgentSession& session,
                           std::optional<std::string> info) const {
  CHECK(!session.finished_) << "Next() called on a finished session";
  if (session.step_ == 0) {
    CHECK(!info.has_value()) << "first turn takes no observation";
  } else {
    CHECK(info.has_value()) << "non-first turn requires an observation";
    // The observation joins the context (the agent "reads" it).
    session.observations_.push_back(*info);
    const std::string wrapped = WrapTag(TagKind::kInfo, *info);
    session.context_tokens_ += ApproxTokenCount(wrapped);
  }

  AgentTurn turn;
  turn.prompt_tokens = session.context_tokens_;

  if (session.step_ < session.task_.steps.size()) {
    const ToolStep& step = session.task_.steps[session.step_];
    turn.text = WrapTag(TagKind::kThink, step.think) +
                WrapTag(TagKind::kSearch, step.query);
    turn.tool_query = step.query;
  } else {
    turn.text = WrapTag(TagKind::kThink, session.task_.final_think) +
                WrapTag(TagKind::kAnswer, session.task_.final_answer);
    turn.answer = session.task_.final_answer;
    session.finished_ = true;
  }
  turn.output_tokens = ApproxTokenCount(turn.text);
  session.context_tokens_ += turn.output_tokens;
  ++session.step_;
  return turn;
}

bool AnswerIsCorrect(const AgentTask& task, bool all_observations_correct) {
  if (!all_observations_correct) return false;
  // Deterministic Bernoulli(base_correctness) draw keyed on the task id.
  const double u =
      static_cast<double>(Mix64(task.id ^ 0xa5a5a5a5deadbeefULL) >> 11) *
      0x1.0p-53;
  return u < task.base_correctness;
}

}  // namespace cortex
