#include "llm/judger_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

#include "llm/tags.h"
#include "util/rng.h"

namespace cortex {

namespace {

std::uint64_t HashText(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Deterministic standard-normal-ish value derived from a hash: sum of four
// uniforms (Irwin-Hall), centred and scaled — adequate tails for evidence
// noise and fully reproducible.
double HashNormal(std::uint64_t h) noexcept {
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    h = Mix64(h + 0x9e3779b97f4a7c15ULL);
    acc += static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  return (acc - 2.0) * std::sqrt(3.0);  // variance of sum of 4 U(0,1) = 1/3
}

double Sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

JudgerModel::JudgerModel(const EquivalenceOracle* oracle,
                         JudgerOptions options, ModelSpec spec)
    : oracle_(oracle), options_(options), spec_(std::move(spec)) {
  CHECK(oracle != nullptr) << "JudgerModel requires an oracle";
}

double JudgerModel::NoiseFor(std::string_view a, std::string_view b,
                             std::uint64_t salt) const noexcept {
  const std::uint64_t h =
      Mix64(HashText(a) ^ Mix64(HashText(b)) ^ options_.seed ^ salt);
  return HashNormal(h);
}

double JudgerModel::Judge(const JudgeRequest& request) const {
  const bool equivalent =
      oracle_->Equivalent(request.query, request.cached_query);
  double evidence =
      equivalent ? options_.mu_equivalent : options_.mu_different;
  // Auxiliary signals a real judger would pick up from the prompt: vector
  // proximity and lexical overlap, centred so they shift rather than
  // dominate.
  evidence += options_.embedding_weight *
              (request.embedding_similarity - options_.embedding_center) *
              options_.embedding_scale;
  evidence += options_.lexical_weight *
              (tokenizer_.LexicalOverlap(request.query, request.cached_query) -
               0.5);
  evidence +=
      options_.noise_sigma * NoiseFor(request.query, request.cached_query, 1);
  return Sigmoid(evidence);
}

double JudgerModel::ScoreStaticity(std::string_view query,
                                   std::string_view result) const {
  const double truth = oracle_->Staticity(query);
  const double noisy = truth + 1.2 * NoiseFor(query, result, 2);
  return std::clamp(noisy, 1.0, 10.0);
}

JudgerModel::FinetuneReport JudgerModel::Finetune(std::size_t num_examples) {
  FinetuneReport report;
  if (num_examples >= kMinFinetuneExamples) {
    report.examples_used = num_examples;
    // Diminishing returns in the example count; hard bounds keep the
    // simulated model from becoming an impossible perfect classifier.
    const double strength =
        std::log2(static_cast<double>(num_examples) /
                  static_cast<double>(kMinFinetuneExamples) + 1.0);
    options_.mu_equivalent =
        std::min(kMaxMuEquivalent, options_.mu_equivalent + 0.15 * strength);
    options_.mu_different =
        std::max(kMinMuDifferent, options_.mu_different - 0.15 * strength);
    options_.noise_sigma =
        std::max(kMinNoiseSigma, options_.noise_sigma - 0.05 * strength);
  }
  report.mu_equivalent_after = options_.mu_equivalent;
  report.mu_different_after = options_.mu_different;
  report.noise_sigma_after = options_.noise_sigma;
  return report;
}

double JudgerModel::JudgeSeconds(const JudgeRequest& request,
                                 double compute_fraction) const noexcept {
  const std::size_t prompt_tokens =
      ApproxTokenCount(request.query) + ApproxTokenCount(request.cached_query) +
      ApproxTokenCount(request.cached_result) + 32 /* instruction template */;
  // Classification: a single generated token.
  return InferenceSeconds(spec_, prompt_tokens, 1, compute_fraction);
}

}  // namespace cortex
