// Tagged agent-output parsing (paper §2.1/§4.1).
//
// Agentic LLMs wrap each step in tags: <think>...</think> for reasoning,
// <search>/<tool>...</> for tool calls, <info>...</info> for observations,
// <answer>...</answer> for the final answer.  Cortex's data client parses
// these blocks to lift (query -> result) pairs into Semantic Elements.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cortex {

enum class TagKind {
  kThink,
  kSearch,   // search tool call
  kTool,     // generic tool call
  kInfo,     // retrieved observation
  kAnswer,   // final answer
  kText,     // untagged text between blocks
};

std::string_view TagName(TagKind kind) noexcept;

struct TaggedSegment {
  TagKind kind = TagKind::kText;
  std::string content;

  friend bool operator==(const TaggedSegment&, const TaggedSegment&) = default;
};

// Parses a model output string into ordered segments.  Unknown tags and
// text outside tags become kText segments; unterminated tags run to the end
// of input (matching how agent frameworks tolerate truncated generations).
std::vector<TaggedSegment> ParseTagged(std::string_view text);

// Wraps content in the tag for the kind, e.g. "<search>q</search>".
std::string WrapTag(TagKind kind, std::string_view content);

// First tool-call segment (kSearch or kTool) in the parse, if any.
std::optional<TaggedSegment> FirstToolCall(
    const std::vector<TaggedSegment>& segments);

// First answer segment, if any.
std::optional<std::string> FinalAnswer(
    const std::vector<TaggedSegment>& segments);

// Rough token count used by the latency models: whitespace-delimited words
// scaled by 4/3 (the usual words->BPE-tokens rule of thumb), minimum 1 for
// non-empty text.
std::size_t ApproxTokenCount(std::string_view text) noexcept;

}  // namespace cortex
