#include "llm/tags.h"

#include <array>
#include <cctype>

namespace cortex {

namespace {

struct TagSpec {
  TagKind kind;
  std::string_view name;
};

constexpr std::array<TagSpec, 5> kTags = {{
    {TagKind::kThink, "think"},
    {TagKind::kSearch, "search"},
    {TagKind::kTool, "tool"},
    {TagKind::kInfo, "info"},
    {TagKind::kAnswer, "answer"},
}};

std::optional<TagKind> KindFor(std::string_view name) {
  for (const auto& spec : kTags) {
    if (spec.name == name) return spec.kind;
  }
  return std::nullopt;
}

void PushText(std::vector<TaggedSegment>& out, std::string_view text) {
  // Skip pure-whitespace glue between tags.
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return;
  const auto last = text.find_last_not_of(" \t\r\n");
  out.push_back({TagKind::kText, std::string(text.substr(first, last - first + 1))});
}

}  // namespace

std::string_view TagName(TagKind kind) noexcept {
  for (const auto& spec : kTags) {
    if (spec.kind == kind) return spec.name;
  }
  return "text";
}

std::vector<TaggedSegment> ParseTagged(std::string_view text) {
  std::vector<TaggedSegment> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto open = text.find('<', pos);
    if (open == std::string_view::npos) {
      PushText(out, text.substr(pos));
      break;
    }
    const auto close = text.find('>', open + 1);
    if (close == std::string_view::npos) {
      PushText(out, text.substr(pos));
      break;
    }
    const std::string_view name = text.substr(open + 1, close - open - 1);
    const auto kind = KindFor(name);
    if (!kind) {
      // Not one of ours: emit up to and including '<' as text and move on.
      PushText(out, text.substr(pos, close + 1 - pos));
      pos = close + 1;
      continue;
    }
    PushText(out, text.substr(pos, open - pos));
    const std::string closing = "</" + std::string(name) + ">";
    const auto end = text.find(closing, close + 1);
    if (end == std::string_view::npos) {
      // Unterminated tag: content runs to end of input.
      out.push_back({*kind, std::string(text.substr(close + 1))});
      pos = text.size();
    } else {
      out.push_back({*kind, std::string(text.substr(close + 1, end - close - 1))});
      pos = end + closing.size();
    }
  }
  return out;
}

std::string WrapTag(TagKind kind, std::string_view content) {
  const auto name = TagName(kind);
  std::string out;
  out.reserve(content.size() + 2 * name.size() + 5);
  out.push_back('<');
  out.append(name);
  out.push_back('>');
  out.append(content);
  out.append("</");
  out.append(name);
  out.push_back('>');
  return out;
}

std::optional<TaggedSegment> FirstToolCall(
    const std::vector<TaggedSegment>& segments) {
  for (const auto& seg : segments) {
    if (seg.kind == TagKind::kSearch || seg.kind == TagKind::kTool) {
      return seg;
    }
  }
  return std::nullopt;
}

std::optional<std::string> FinalAnswer(
    const std::vector<TaggedSegment>& segments) {
  for (const auto& seg : segments) {
    if (seg.kind == TagKind::kAnswer) return seg.content;
  }
  return std::nullopt;
}

std::size_t ApproxTokenCount(std::string_view text) noexcept {
  std::size_t words = 0;
  bool in_word = false;
  for (char c : text) {
    const bool space = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (!space && !in_word) ++words;
    in_word = !space;
  }
  if (words == 0) return text.empty() ? 0 : 1;
  return (words * 4 + 2) / 3;
}

}  // namespace cortex
