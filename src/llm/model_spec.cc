#include "llm/model_spec.h"

#include <algorithm>

#include "util/check.h"

namespace cortex {

ModelSpec ModelSpec::Agent7B() {
  ModelSpec s;
  s.name = "search-r1-7b";
  s.params_billions = 7.0;
  s.prefill_tokens_per_sec = 16000.0;
  s.decode_tokens_per_sec = 220.0;
  s.kv_bytes_per_token = 160.0 * 1024.0;
  return s;
}

ModelSpec ModelSpec::Coder8B() {
  ModelSpec s;
  s.name = "qwen3-8b";
  s.params_billions = 8.0;
  s.prefill_tokens_per_sec = 14000.0;
  s.decode_tokens_per_sec = 190.0;
  s.kv_bytes_per_token = 176.0 * 1024.0;
  return s;
}

ModelSpec ModelSpec::Judger06B() {
  ModelSpec s;
  s.name = "qwen3-0.6b-judger";
  s.params_billions = 0.6;
  // Small model: much faster prefill; it generates a single token
  // (classification), so decode rate barely matters.
  s.prefill_tokens_per_sec = 90000.0;
  s.decode_tokens_per_sec = 900.0;
  s.kv_bytes_per_token = 24.0 * 1024.0;
  s.fixed_overhead_sec = 0.002;
  return s;
}

ModelSpec ModelSpec::Embedder06B() {
  ModelSpec s;
  s.name = "qwen3-0.6b-embedding";
  s.params_billions = 0.6;
  s.prefill_tokens_per_sec = 110000.0;
  s.decode_tokens_per_sec = 0.0;  // encoder-style: no decoding
  s.kv_bytes_per_token = 0.0;
  s.fixed_overhead_sec = 0.001;
  return s;
}

double InferenceSeconds(const ModelSpec& spec, std::size_t prompt_tokens,
                        std::size_t output_tokens,
                        double compute_fraction) noexcept {
  DCHECK_GT(compute_fraction, 0.0);
  DCHECK_LE(compute_fraction, 1.0);
  double t = spec.fixed_overhead_sec;
  if (prompt_tokens > 0 && spec.prefill_tokens_per_sec > 0.0) {
    t += static_cast<double>(prompt_tokens) /
         (spec.prefill_tokens_per_sec * compute_fraction);
  }
  if (output_tokens > 0 && spec.decode_tokens_per_sec > 0.0) {
    t += static_cast<double>(output_tokens) /
         (spec.decode_tokens_per_sec * compute_fraction);
  }
  return t;
}

double KvBytes(const ModelSpec& spec, std::size_t context_tokens) noexcept {
  return spec.kv_bytes_per_token * static_cast<double>(context_tokens);
}

}  // namespace cortex
