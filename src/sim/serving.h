// Interfaces binding the simulation driver to a serving configuration.
//
// The driver owns the agent loop (arrivals, turns, observations); a
// ToolResolver decides how each tool call is satisfied — straight to the
// remote service (vanilla), via an exact-match cache, or via the full
// Cortex engine.  Resolvers are asynchronous: they receive the simulation
// and call `done` at the (virtual) time the information is available.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "llm/agent_model.h"
#include "sim/event_queue.h"

namespace cortex {

// Everything the metrics layer wants to know about one resolved tool call.
struct ResolveOutcome {
  std::string info;                // what the agent observes
  bool from_cache = false;         // true if served without a remote call
  bool info_correct = true;        // oracle: is `info` valid for the query?
  double cache_check_seconds = 0;  // embedding + ANN + judger time
  double tool_seconds = 0;         // remote fetch time (0 on a cache hit)
  std::uint64_t api_calls = 0;     // remote attempts issued
  std::uint64_t retries = 0;       // throttled/failed attempts
  double cost_dollars = 0.0;       // API fees for this call
};

using ResolveCallback = std::function<void(ResolveOutcome)>;

class ToolResolver {
 public:
  virtual ~ToolResolver() = default;

  // Resolves `step.query` starting at sim.now(); must eventually invoke
  // `done` exactly once (possibly synchronously at the current time).
  // `task_id` identifies the agent session issuing the call, which lets
  // resolvers keep per-session state (e.g. Markov prefetch streams).
  // `step` is only guaranteed valid for the duration of this call.
  virtual void Resolve(Simulation& sim, const ToolStep& step,
                       std::uint64_t task_id, ResolveCallback done) = 0;

  virtual std::string name() const = 0;
};

// Per-task record emitted by the driver when a task finishes.
struct TaskRecord {
  std::uint64_t task_id = 0;
  double arrival_time = 0.0;
  double completion_time = 0.0;
  double agent_seconds = 0.0;       // LLM inference time
  double cache_check_seconds = 0.0; // total across tool calls
  double tool_seconds = 0.0;        // total remote time
  std::uint64_t tool_calls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t api_calls = 0;
  std::uint64_t retries = 0;
  double cost_dollars = 0.0;
  bool all_observations_correct = true;
  bool answer_correct = false;

  double Latency() const noexcept { return completion_time - arrival_time; }
};

}  // namespace cortex
