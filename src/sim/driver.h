// ServingDriver: runs agent tasks end-to-end on the simulated serving stack.
//
// Owns the think->act->observe loop: each task's turns execute on the
// ColocationSimulator (GPU), each tool call is satisfied by the configured
// ToolResolver (vanilla / exact cache / Cortex), and per-task records feed
// RunMetrics.  Supports open-loop (Poisson or paced arrivals at a target
// request rate — Fig. 10's x-axis) and closed-loop (fixed concurrency)
// load generation.
#pragma once

#include <memory>
#include <vector>

#include "gpu/colocation.h"
#include "llm/agent_model.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/serving.h"
#include "util/rng.h"

namespace cortex {

struct DriverOptions {
  enum class Arrival { kOpenLoop, kClosedLoop };
  Arrival arrival = Arrival::kOpenLoop;
  double request_rate = 1.0;     // open loop: mean arrivals per second
  bool poisson_arrivals = true;  // open loop: exponential vs fixed spacing
  std::size_t concurrency = 4;   // closed loop: in-flight tasks
  // Arrival times may also follow an explicit schedule (trend workloads);
  // when non-empty it overrides rate/concurrency and must match task count.
  std::vector<double> explicit_arrivals;
  std::uint64_t seed = 2024;
};

class ServingDriver {
 public:
  ServingDriver(const AgentModel& agent, ColocationSimulator& gpu,
                ToolResolver& resolver, DriverOptions options = {});

  // Runs all tasks to completion; returns aggregated metrics.
  RunMetrics Run(std::vector<AgentTask> tasks);

 private:
  struct TaskState;

  void StartTask(Simulation& sim, std::shared_ptr<TaskState> state);
  void RunTurn(Simulation& sim, std::shared_ptr<TaskState> state,
               std::optional<std::string> info);
  void FinishTask(Simulation& sim, std::shared_ptr<TaskState> state);

  const AgentModel& agent_;
  ColocationSimulator& gpu_;
  ToolResolver& resolver_;
  DriverOptions options_;
  Rng rng_;

  RunMetrics* metrics_ = nullptr;  // valid during Run()
  std::vector<AgentTask> pending_;  // closed loop: tasks not yet started
};

}  // namespace cortex
