#include "sim/metrics.h"

#include <algorithm>

namespace cortex {

void RunMetrics::Record(const TaskRecord& record) {
  records_.push_back(record);
  latency_.Add(record.Latency());
  agent_seconds_.Add(record.agent_seconds);
  cache_check_seconds_.Add(record.cache_check_seconds);
  tool_seconds_.Add(record.tool_seconds);
  for (std::uint64_t i = 0; i < record.cache_hits; ++i) hit_ratio_.AddHit();
  for (std::uint64_t i = record.cache_hits; i < record.tool_calls; ++i) {
    hit_ratio_.AddMiss();
  }
  accuracy_.Add(record.answer_correct);
  tool_calls_ += record.tool_calls;
  api_calls_ += record.api_calls;
  retries_ += record.retries;
  api_dollars_ += record.cost_dollars;
  first_arrival_ = std::min(first_arrival_, record.arrival_time);
  last_completion_ = std::max(last_completion_, record.completion_time);
}

double RunMetrics::Throughput() const noexcept {
  if (records_.empty()) return 0.0;
  const double span = last_completion_ - first_arrival_;
  return span > 0.0 ? static_cast<double>(records_.size()) / span : 0.0;
}

}  // namespace cortex
