#include "sim/trace_export.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cortex {

void WriteTaskRecordsCsv(const RunMetrics& metrics, std::ostream& out) {
  out << "task_id,arrival,completion,latency,agent_s,cache_check_s,tool_s,"
         "tool_calls,cache_hits,api_calls,retries,cost,answer_correct\n";
  for (const auto& r : metrics.records()) {
    out << r.task_id << ',' << r.arrival_time << ',' << r.completion_time
        << ',' << r.Latency() << ',' << r.agent_seconds << ','
        << r.cache_check_seconds << ',' << r.tool_seconds << ','
        << r.tool_calls << ',' << r.cache_hits << ',' << r.api_calls << ','
        << r.retries << ',' << r.cost_dollars << ','
        << (r.answer_correct ? 1 : 0) << '\n';
  }
}

void WriteTaskRecordsCsvFile(const RunMetrics& metrics,
                             const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("trace export: cannot open " + path);
  WriteTaskRecordsCsv(metrics, out);
}

void WriteLatencyCdfCsv(const RunMetrics& metrics, std::ostream& out,
                        std::size_t points) {
  out << "quantile,latency_seconds\n";
  if (points < 2) points = 2;
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out << q << ',' << metrics.latency().Quantile(q) << '\n';
  }
}

void WriteSummaryCsv(const RunMetrics& metrics, std::ostream& out,
                     const std::string& label, bool include_header) {
  if (include_header) {
    out << "label,tasks,throughput,hit_rate,accuracy,mean_latency,"
           "p99_latency,api_calls,retries,api_cost\n";
  }
  out << label << ',' << metrics.completed_tasks() << ','
      << metrics.Throughput() << ',' << metrics.CacheHitRate() << ','
      << metrics.Accuracy() << ',' << metrics.MeanLatency() << ','
      << metrics.P99Latency() << ',' << metrics.total_api_calls() << ','
      << metrics.total_retries() << ',' << metrics.api_dollars() << '\n';
}

}  // namespace cortex
