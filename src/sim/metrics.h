// Aggregation of per-task records into the metrics the paper reports:
// throughput (req/s), latency distribution (ms), cache hit rate, EM
// accuracy, API call/retry counts, and dollar costs (§6.1 "Metrics").
#pragma once

#include <string>
#include <vector>

#include "net/cost_model.h"
#include "sim/serving.h"
#include "util/stats.h"

namespace cortex {

class RunMetrics {
 public:
  void Record(const TaskRecord& record);

  std::size_t completed_tasks() const noexcept { return records_.size(); }
  // Requests per second over the span from first arrival to last completion.
  double Throughput() const noexcept;
  const Histogram& latency() const noexcept { return latency_; }
  double MeanLatency() const noexcept { return latency_.mean(); }
  double P99Latency() const noexcept { return latency_.p99(); }

  double CacheHitRate() const noexcept { return hit_ratio_.ratio(); }
  double Accuracy() const noexcept { return accuracy_.ratio(); }

  std::uint64_t total_tool_calls() const noexcept { return tool_calls_; }
  std::uint64_t total_api_calls() const noexcept { return api_calls_; }
  std::uint64_t total_retries() const noexcept { return retries_; }
  double RetryRatio() const noexcept {
    return api_calls_ ? static_cast<double>(retries_) /
                            static_cast<double>(api_calls_)
                      : 0.0;
  }

  double api_dollars() const noexcept { return api_dollars_; }

  // Mean per-request time breakdown (Fig. 11).
  double MeanAgentSeconds() const noexcept { return agent_seconds_.mean(); }
  double MeanCacheCheckSeconds() const noexcept {
    return cache_check_seconds_.mean();
  }
  double MeanToolSeconds() const noexcept { return tool_seconds_.mean(); }

  double first_arrival() const noexcept { return first_arrival_; }
  double last_completion() const noexcept { return last_completion_; }

  const std::vector<TaskRecord>& records() const noexcept { return records_; }

 private:
  std::vector<TaskRecord> records_;
  Histogram latency_;
  StreamingStats agent_seconds_;
  StreamingStats cache_check_seconds_;
  StreamingStats tool_seconds_;
  RatioCounter hit_ratio_;
  RatioCounter accuracy_;
  std::uint64_t tool_calls_ = 0;
  std::uint64_t api_calls_ = 0;
  std::uint64_t retries_ = 0;
  double api_dollars_ = 0.0;
  double first_arrival_ = 1e300;
  double last_completion_ = 0.0;
};

}  // namespace cortex
