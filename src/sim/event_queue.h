// Discrete-event simulation engine.
//
// All Cortex experiments run on a virtual clock: components compute service
// times synchronously at the current simulation time, and continuations are
// scheduled as future events.  Events at equal times run in FIFO order
// (stable sequence numbers), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cortex {

class Simulation {
 public:
  using Action = std::function<void()>;

  double now() const noexcept { return now_; }

  // Schedules `action` at absolute time `when` (>= now, clamped otherwise).
  void ScheduleAt(double when, Action action);
  // Schedules `action` after `delay` seconds.
  void ScheduleAfter(double delay, Action action) {
    ScheduleAt(now_ + delay, std::move(action));
  }

  // Runs until the queue drains or the clock passes `until` (infinity by
  // default).  Returns the number of events executed.
  std::size_t Run(double until = 1e300);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cortex
