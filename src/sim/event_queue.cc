#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace cortex {

void Simulation::ScheduleAt(double when, Action action) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(action)});
}

std::size_t Simulation::Run(double until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.top().time > until) break;
    // Move the action out before popping so re-entrant scheduling is safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
  }
  return executed;
}

}  // namespace cortex
