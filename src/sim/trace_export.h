// Trace export: per-task records and latency distributions as CSV, so runs
// can be analysed outside the harness (pandas, gnuplot, spreadsheets).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/metrics.h"

namespace cortex {

// One CSV row per completed task:
//   task_id,arrival,completion,latency,agent_s,cache_check_s,tool_s,
//   tool_calls,cache_hits,api_calls,retries,cost,answer_correct
void WriteTaskRecordsCsv(const RunMetrics& metrics, std::ostream& out);
void WriteTaskRecordsCsvFile(const RunMetrics& metrics,
                             const std::string& path);

// Latency CDF at the given number of evenly spaced quantiles:
//   quantile,latency_seconds
void WriteLatencyCdfCsv(const RunMetrics& metrics, std::ostream& out,
                        std::size_t points = 100);

// One-line run summary (throughput, hit rate, accuracy, costs) as a
// header+row CSV, concatenable across runs for sweep analysis.
void WriteSummaryCsv(const RunMetrics& metrics, std::ostream& out,
                     const std::string& label, bool include_header = true);

}  // namespace cortex
