#include "sim/driver.h"

#include <utility>

#include "util/check.h"

namespace cortex {

struct ServingDriver::TaskState {
  explicit TaskState(AgentTask task) : session(std::move(task)) {}
  AgentSession session;
  TaskRecord record;
};

ServingDriver::ServingDriver(const AgentModel& agent, ColocationSimulator& gpu,
                             ToolResolver& resolver, DriverOptions options)
    : agent_(agent),
      gpu_(gpu),
      resolver_(resolver),
      options_(std::move(options)),
      rng_(options_.seed) {}

RunMetrics ServingDriver::Run(std::vector<AgentTask> tasks) {
  RunMetrics metrics;
  metrics_ = &metrics;
  Simulation sim;

  if (!options_.explicit_arrivals.empty()) {
    CHECK_EQ(options_.explicit_arrivals.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto state = std::make_shared<TaskState>(std::move(tasks[i]));
      state->record.arrival_time = options_.explicit_arrivals[i];
      sim.ScheduleAt(options_.explicit_arrivals[i],
                     [this, &sim, state] { StartTask(sim, state); });
    }
  } else if (options_.arrival == DriverOptions::Arrival::kOpenLoop) {
    double t = 0.0;
    for (auto& task : tasks) {
      auto state = std::make_shared<TaskState>(std::move(task));
      state->record.arrival_time = t;
      sim.ScheduleAt(t, [this, &sim, state] { StartTask(sim, state); });
      t += options_.poisson_arrivals
               ? rng_.Exponential(options_.request_rate)
               : 1.0 / options_.request_rate;
    }
  } else {
    // Closed loop: seed `concurrency` tasks; each completion launches the
    // next from pending_.
    pending_ = std::move(tasks);
    // Reverse so pop_back() serves tasks in their original order.
    std::reverse(pending_.begin(), pending_.end());
    const std::size_t initial =
        std::min(options_.concurrency, pending_.size());
    for (std::size_t i = 0; i < initial; ++i) {
      auto state = std::make_shared<TaskState>(std::move(pending_.back()));
      pending_.pop_back();
      state->record.arrival_time = 0.0;
      sim.ScheduleAt(0.0, [this, &sim, state] { StartTask(sim, state); });
    }
  }

  sim.Run();
  metrics_ = nullptr;
  pending_.clear();
  return metrics;
}

void ServingDriver::StartTask(Simulation& sim,
                              std::shared_ptr<TaskState> state) {
  state->record.task_id = state->session.task().id;
  RunTurn(sim, std::move(state), std::nullopt);
}

void ServingDriver::RunTurn(Simulation& sim, std::shared_ptr<TaskState> state,
                            std::optional<std::string> info) {
  const double now = sim.now();
  const AgentTurn turn = agent_.Next(state->session, std::move(info));
  const double done =
      gpu_.RunAgentTurn(now, turn.prompt_tokens, turn.output_tokens);
  state->record.agent_seconds += done - now;

  if (turn.tool_query) {
    // The step just consumed is step_index()-1 (Next() advanced it).
    const std::size_t idx = state->session.step_index() - 1;
    const ToolStep& step = state->session.task().steps[idx];
    sim.ScheduleAt(done, [this, &sim, state, &step] {
      resolver_.Resolve(sim, step, state->record.task_id,
                        [this, &sim, state](ResolveOutcome out) {
        auto& rec = state->record;
        rec.tool_calls += 1;
        rec.cache_hits += out.from_cache ? 1 : 0;
        rec.cache_check_seconds += out.cache_check_seconds;
        rec.tool_seconds += out.tool_seconds;
        rec.api_calls += out.api_calls;
        rec.retries += out.retries;
        rec.cost_dollars += out.cost_dollars;
        rec.all_observations_correct &= out.info_correct;
        RunTurn(sim, state, std::move(out.info));
      });
    });
  } else {
    sim.ScheduleAt(done, [this, &sim, state] { FinishTask(sim, state); });
  }
}

void ServingDriver::FinishTask(Simulation& sim,
                               std::shared_ptr<TaskState> state) {
  auto& rec = state->record;
  rec.completion_time = sim.now();
  rec.answer_correct = AnswerIsCorrect(state->session.task(),
                                       rec.all_observations_correct);
  metrics_->Record(rec);

  if (options_.arrival == DriverOptions::Arrival::kClosedLoop &&
      options_.explicit_arrivals.empty() && !pending_.empty()) {
    auto next = std::make_shared<TaskState>(std::move(pending_.back()));
    pending_.pop_back();
    next->record.arrival_time = sim.now();
    StartTask(sim, std::move(next));
  }
}

}  // namespace cortex
