#include "cluster/hash_ring.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace cortex::cluster {

namespace {

// FNV-1a 64 with a Mix64 finisher — the same construction shard routing
// uses, so ring placement quality matches the intra-node split.
std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

std::string NodeEndpoint::ToString() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  return host + ":" + std::to_string(port);
}

std::optional<NodeEndpoint> ParseEndpoint(std::string_view text,
                                          std::string* error) {
  NodeEndpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.unix_path = std::string(text.substr(5));
    if (ep.unix_path.empty()) {
      if (error) *error = "empty unix socket path";
      return std::nullopt;
    }
    return ep;
  }
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    if (error) *error = "endpoint must be host:port or unix:PATH";
    return std::nullopt;
  }
  ep.host = std::string(text.substr(0, colon));
  int port = 0;
  for (const char c : text.substr(colon + 1)) {
    if (c < '0' || c > '9' || port > 65535) {
      if (error) *error = "bad port in endpoint";
      return std::nullopt;
    }
    port = port * 10 + (c - '0');
  }
  if (port <= 0 || port > 65535) {
    if (error) *error = "bad port in endpoint";
    return std::nullopt;
  }
  ep.port = port;
  return ep;
}

HashRing::HashRing(HashRingOptions options) : options_(options) {
  CHECK_GT(options_.vnodes_per_node, 0u);
  CHECK_GT(options_.replication, 0u);
}

std::uint64_t HashRing::PointFor(std::string_view key) {
  return HashBytes(key);
}

void HashRing::AddNode(const std::string& name, const NodeEndpoint& endpoint) {
  CHECK(!name.empty()) << "ring node needs a name";
  CHECK(!HasNode(name)) << "duplicate ring node '" << name << "'";
  nodes_.push_back({name, endpoint});
  Rebuild();
  ++version_;
}

bool HashRing::RemoveNode(std::string_view name) {
  const auto it =
      std::find_if(nodes_.begin(), nodes_.end(),
                   [&](const Node& n) { return n.name == name; });
  if (it == nodes_.end()) return false;
  nodes_.erase(it);
  Rebuild();
  ++version_;
  return true;
}

bool HashRing::HasNode(std::string_view name) const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [&](const Node& n) { return n.name == name; });
}

std::size_t HashRing::num_nodes() const noexcept { return nodes_.size(); }

std::vector<std::string> HashRing::NodeNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const Node& n : nodes_) names.push_back(n.name);
  std::sort(names.begin(), names.end());
  return names;
}

const NodeEndpoint* HashRing::EndpointOf(std::string_view name) const {
  for (const Node& n : nodes_) {
    if (n.name == name) return &n.endpoint;
  }
  return nullptr;
}

void HashRing::Rebuild() {
  vnodes_.clear();
  vnodes_.reserve(nodes_.size() * options_.vnodes_per_node);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t v = 0; v < options_.vnodes_per_node; ++v) {
      const std::string label =
          nodes_[i].name + "#" + std::to_string(v);
      vnodes_.push_back({HashBytes(label), i});
    }
  }
  std::sort(vnodes_.begin(), vnodes_.end(), [](const VNode& a, const VNode& b) {
    return a.point != b.point ? a.point < b.point : a.node < b.node;
  });
}

std::vector<std::string> HashRing::OwnersFor(std::string_view key) const {
  std::vector<std::string> owners;
  if (vnodes_.empty()) return owners;
  const std::size_t want = std::min(options_.replication, nodes_.size());
  const std::uint64_t point = PointFor(key);
  auto it = std::lower_bound(
      vnodes_.begin(), vnodes_.end(), point,
      [](const VNode& v, std::uint64_t p) { return v.point < p; });
  // Walk clockwise (wrapping) collecting distinct nodes.
  std::vector<bool> seen(nodes_.size(), false);
  for (std::size_t step = 0; step < vnodes_.size() && owners.size() < want;
       ++step) {
    if (it == vnodes_.end()) it = vnodes_.begin();
    if (!seen[it->node]) {
      seen[it->node] = true;
      owners.push_back(nodes_[it->node].name);
    }
    ++it;
  }
  return owners;
}

std::string HashRing::PrimaryFor(std::string_view key) const {
  auto owners = OwnersFor(key);
  return owners.empty() ? std::string() : std::move(owners.front());
}

}  // namespace cortex::cluster
