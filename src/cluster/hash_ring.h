// Consistent-hash ring for the cluster tier (DESIGN.md §10).  Each node
// contributes `vnodes_per_node` points on a 64-bit ring; a placement key
// hashes to a point and is owned by the next `replication` *distinct*
// nodes clockwise.  Virtual nodes smooth the load split (stddev shrinks
// with sqrt(vnodes)), and adding one node steals only ~1/N of each
// existing node's keyspace — the property live migration depends on.
//
// Keys are *placement keys*, not raw queries: the router derives them via
// core/sharded_cache's PlacementAnchor (or a tenant prefix), so every
// paraphrase of a piece of knowledge lands on the same owner and hot
// semantic neighborhoods stay co-resident.
//
// HashRing is a copyable value type with no locks: the router mutates a
// copy off to the side and swaps it in under its state lock, so readers
// never observe a half-built ring.  version() bumps on every mutation.
// Shared instances are externally synchronized — the router's live rings
// live under state_mu_ with GUARDED_BY annotations (router.h), which is
// where cortex_analyzer's guarded-by check enforces the discipline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cortex::cluster {

// Where a node listens: TCP host:port, or a Unix-domain socket when
// unix_path is non-empty (which then takes precedence).
struct NodeEndpoint {
  std::string host;
  int port = 0;
  std::string unix_path;

  // "host:port" or "unix:PATH" — the inverse of ParseEndpoint.
  std::string ToString() const;
};

// Parses "host:port" or "unix:PATH".  Returns nullopt and fills `error`
// on malformed input.
std::optional<NodeEndpoint> ParseEndpoint(std::string_view text,
                                          std::string* error = nullptr);

struct HashRingOptions {
  std::size_t vnodes_per_node = 64;
  // Distinct owners per key (primary + replicas); clamped to the node
  // count when the ring is smaller.
  std::size_t replication = 1;
};

class HashRing {
 public:
  explicit HashRing(HashRingOptions options = {});

  // CHECK-fails on a duplicate name or empty name/endpoint.
  void AddNode(const std::string& name, const NodeEndpoint& endpoint);
  // Returns false when the name is not on the ring.
  bool RemoveNode(std::string_view name);

  bool HasNode(std::string_view name) const;
  std::size_t num_nodes() const noexcept;
  // Sorted by name, for stable exposition.
  std::vector<std::string> NodeNames() const;
  const NodeEndpoint* EndpointOf(std::string_view name) const;

  // Up to `replication` distinct owner names, clockwise from the key's
  // point; fewer when the ring holds fewer nodes, empty on an empty ring.
  // The first entry is the primary.
  std::vector<std::string> OwnersFor(std::string_view key) const;
  std::string PrimaryFor(std::string_view key) const;

  // The key's position on the ring (exposed so tests can pin placement).
  static std::uint64_t PointFor(std::string_view key);

  std::uint64_t version() const noexcept { return version_; }
  const HashRingOptions& options() const noexcept { return options_; }

 private:
  struct Node {
    std::string name;
    NodeEndpoint endpoint;
  };
  struct VNode {
    std::uint64_t point;
    std::uint32_t node;  // index into nodes_
  };

  void Rebuild();

  HashRingOptions options_;
  std::vector<Node> nodes_;
  std::vector<VNode> vnodes_;  // sorted by point
  std::uint64_t version_ = 0;
};

}  // namespace cortex::cluster
