#include "cluster/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/sharded_cache.h"
#include "serve/concurrent_engine.h"
#include "tenant/tenant.h"
#include "util/check.h"

namespace cortex::cluster {

using serve::Request;
using serve::RequestType;
using serve::Response;
using serve::ResponseType;

namespace {

std::string Errno(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Response MakeResponse(ResponseType type) {
  Response r;
  r.type = type;
  return r;
}

Response MakeError(std::string message) {
  Response r = MakeResponse(ResponseType::kError);
  r.message = std::move(message);
  return r;
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void SendOneFrame(int fd, const Response& response) {
  std::string out;
  serve::AppendFrame(EncodePayload(response), out);
  SendAll(fd, out);
}

// A response that settles the request: anything but a transport failure
// (nullopt) or BUSY, both of which mean "try the next replica".
bool Settles(const std::optional<Response>& response) {
  return response.has_value() && response->type != ResponseType::kBusy;
}

}  // namespace

ClusterRouter::ClusterRouter(RouterOptions options)
    : options_(std::move(options)), ring_(options_.ring) {
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    registry_owned_ = std::make_unique<telemetry::MetricRegistry>();
    registry_ = registry_owned_.get();
  }
  connections_accepted_ =
      registry_->GetCounter("cortex_router_connections_accepted");
  connections_rejected_ =
      registry_->GetCounter("cortex_router_connections_rejected");
  requests_served_ = registry_->GetCounter("cortex_router_requests_served");
  requests_busy_ = registry_->GetCounter("cortex_router_requests_busy");
  protocol_errors_ = registry_->GetCounter("cortex_router_protocol_errors");
  lookups_ = registry_->GetCounter("cortex_router_lookups");
  inserts_ = registry_->GetCounter("cortex_router_inserts");
  failovers_ = registry_->GetCounter("cortex_router_failovers");
  double_reads_ = registry_->GetCounter("cortex_router_double_reads");
  double_read_hits_ = registry_->GetCounter("cortex_router_double_read_hits");
  dual_writes_ = registry_->GetCounter("cortex_router_dual_writes");
  replica_writes_ = registry_->GetCounter("cortex_router_replica_writes");
  node_errors_ = registry_->GetCounter("cortex_router_node_errors");
  migrations_ = registry_->GetCounter("cortex_router_migrations");
  migration_entries_ =
      registry_->GetCounter("cortex_router_migration_entries");
  migration_bytes_ = registry_->GetCounter("cortex_router_migration_bytes");
  migration_seconds_ = registry_->GetGauge("cortex_router_migration_seconds");
  ring_version_gauge_ = registry_->GetGauge("cortex_router_ring_version");
  nodes_gauge_ = registry_->GetGauge("cortex_router_nodes");
  queue_depth_ = registry_->GetGauge("cortex_router_queue_depth");
  request_seconds_ =
      registry_->GetHistogram("cortex_router_request_seconds");
}

ClusterRouter::~ClusterRouter() { Stop(); }

bool ClusterRouter::AddNode(const std::string& name,
                            const std::string& endpoint, std::string* error) {
  const auto ep = ParseEndpoint(endpoint, error);
  if (!ep) return false;
  WriterLock lock(state_mu_);
  if (ring_.HasNode(name)) {
    if (error) *error = "node '" + name + "' already on the ring";
    return false;
  }
  if (next_ring_) {
    if (error) *error = "migration in progress";
    return false;
  }
  ring_.AddNode(name, *ep);
  if (pools_.find(name) == pools_.end()) {
    NodePoolOptions nopts = options_.node;
    nopts.seed = pool_seed_++;
    pools_[name] =
        std::make_unique<NodePool>(name, *ep, nopts, registry_);
  }
  ring_version_gauge_->Set(static_cast<double>(ring_.version()));
  nodes_gauge_->Set(static_cast<double>(ring_.num_nodes()));
  return true;
}

std::uint64_t ClusterRouter::ring_version() const {
  ReaderLock lock(state_mu_);
  return ring_.version();
}

bool ClusterRouter::migrating() const {
  ReaderLock lock(state_mu_);
  return next_ring_.has_value();
}

std::size_t ClusterRouter::num_nodes() const {
  ReaderLock lock(state_mu_);
  return ring_.num_nodes();
}

std::string ClusterRouter::PlacementKey(std::string_view text) const {
  // Tenant pinning: "tenant:<id>|<query>" places every query of a tenant
  // on one owner set, whatever the query says.  A bare "tenant:<id>" is
  // already a placement key (the form RouteLookup/RouteInsert derive from
  // TLOOKUP/TINSERT) and passes through verbatim, keeping PlacementKey
  // idempotent.
  if (text.rfind("tenant:", 0) == 0 && text.size() > 7) {
    const auto bar = text.find('|');
    if (bar == std::string_view::npos) return std::string(text);
    if (bar > 7) return std::string(text.substr(0, bar));
  }
  if (options_.embedder != nullptr) {
    return PlacementAnchor(*options_.embedder, tokenizer_, text);
  }
  return std::string(text);
}

std::vector<std::string> ClusterRouter::OwnersFor(
    std::string_view text) const {
  const std::string key = PlacementKey(text);
  ReaderLock lock(state_mu_);
  return ring_.OwnersFor(key);
}

std::vector<NodePool*> ClusterRouter::PoolsFor(
    const HashRing& ring, std::string_view placement_key) const {
  std::vector<NodePool*> pools;
  for (const std::string& name : ring.OwnersFor(placement_key)) {
    const auto it = pools_.find(name);
    if (it != pools_.end()) pools.push_back(it->second.get());
  }
  return pools;
}

bool ClusterRouter::Start(std::string* error) {
  if (running_.load()) return true;

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      if (error) *error = "unix socket path too long";
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = Errno("socket");
      return false;
    }
    ::unlink(options_.unix_path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      if (error) *error = Errno("bind(" + options_.unix_path + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    bound_unix_path_ = options_.unix_path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = Errno("socket");
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "bad host " + options_.host;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      if (error) *error = Errno("bind(" + options_.host + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }

  if (::listen(listen_fd_, 128) < 0) {
    if (error) *error = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  stopping_.store(false);
  draining_.store(false);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void ClusterRouter::Drain(double timeout_sec) {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  const double deadline = telemetry::WallSeconds() + timeout_sec;
  for (;;) {
    std::size_t queued = 0;
    {
      MutexLock lock(queue_mu_);
      queued = conn_queue_.size();
    }
    if (queued == 0 &&
        active_connections_.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (telemetry::WallSeconds() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Stop();
}

void ClusterRouter::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::deque<int> leftover;
  {
    MutexLock lock(queue_mu_);
    leftover.swap(conn_queue_);
  }
  for (int fd : leftover) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!bound_unix_path_.empty()) {
    ::unlink(bound_unix_path_.c_str());
    bound_unix_path_.clear();
  }
}

void ClusterRouter::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_->Inc();
    bool rejected = false;
    {
      MutexLock lock(queue_mu_);
      if (conn_queue_.size() >= options_.max_pending_connections) {
        rejected = true;
      } else {
        conn_queue_.push_back(fd);
        queue_depth_->Set(static_cast<double>(conn_queue_.size()));
      }
    }
    if (rejected) {
      connections_rejected_->Inc();
      SendOneFrame(fd, MakeResponse(ResponseType::kBusy));
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void ClusterRouter::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<RankedMutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !conn_queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
      queue_depth_->Set(static_cast<double>(conn_queue_.size()));
    }
    ServeConnection(fd);
  }
}

void ClusterRouter::ServeConnection(int fd) {
  active_connections_.fetch_add(1, std::memory_order_acq_rel);
  struct ActiveGuard {
    std::atomic<std::int64_t>* n;
    ~ActiveGuard() { n->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&active_connections_};

  serve::FrameDecoder decoder(options_.max_frame_bytes);
  struct PendingFrame {
    bool overloaded = false;
    std::string payload;
  };
  std::deque<PendingFrame> pending;
  std::string outbuf;
  char buf[16 * 1024];
  bool done = false;

  while (!done && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      // Same drain contract as CortexServer: outbuf is flushed at the end
      // of every iteration, so an idle tick while draining closes cleanly.
      if (draining_.load(std::memory_order_acquire)) break;
      continue;
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) break;

    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) {
      if (decoder.MidFrame()) protocol_errors_->Inc();
      break;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    decoder.Feed(std::string_view(buf, static_cast<std::size_t>(n)));

    outbuf.clear();
    std::string payload;
    for (;;) {
      const serve::FrameDecoder::Status st = decoder.Next(&payload);
      if (st == serve::FrameDecoder::Status::kNeedMore) break;
      if (st == serve::FrameDecoder::Status::kOversized) {
        protocol_errors_->Inc();
        serve::AppendFrame(
            EncodePayload(MakeError(
                "frame exceeds " + std::to_string(options_.max_frame_bytes) +
                " bytes")),
            outbuf);
        done = true;
        break;
      }
      if (pending.size() >= options_.max_pipeline) {
        pending.push_back({true, {}});
        continue;
      }
      pending.push_back({false, std::move(payload)});
    }

    while (!pending.empty()) {
      const PendingFrame frame = std::move(pending.front());
      pending.pop_front();
      if (frame.overloaded) {
        requests_busy_->Inc();
        requests_served_->Inc();
        serve::AppendFrame(EncodePayload(MakeResponse(ResponseType::kBusy)),
                           outbuf);
        continue;
      }
      const double t0 = telemetry::WallSeconds();
      std::string parse_error;
      Response response;
      if (const auto request =
              serve::ParseRequest(frame.payload, &parse_error)) {
        response = Execute(*request);
      } else {
        protocol_errors_->Inc();
        response = MakeError(parse_error);
      }
      requests_served_->Inc();
      request_seconds_->Observe(telemetry::WallSeconds() - t0);
      serve::AppendFrame(EncodePayload(response), outbuf);
    }

    if (!outbuf.empty() && !SendAll(fd, outbuf)) break;
  }
  ::close(fd);
}

Response ClusterRouter::Execute(const Request& request) {
  switch (request.type) {
    case RequestType::kPing:
      return MakeResponse(ResponseType::kPong);
    case RequestType::kHello: {
      if (request.version != serve::kProtocolVersion) {
        return MakeError(
            "protocol version mismatch: peer speaks v" +
            std::to_string(request.version) + ", this router speaks v" +
            std::to_string(serve::kProtocolVersion));
      }
      Response r = MakeResponse(ResponseType::kWelcome);
      r.id = serve::kProtocolVersion;
      r.message = "router";
      return r;
    }
    case RequestType::kLookup:
    case RequestType::kTenantLookup:
      return RouteLookup(request);
    case RequestType::kInsert:
    case RequestType::kTenantInsert:
      return RouteInsert(request);
    case RequestType::kMigrate:
      return DoMigrate(request);
    case RequestType::kCluster:
      return BuildCluster();
    case RequestType::kStats:
      return BuildStats();
    case RequestType::kDumpTrace:
      return MakeError("no flight recorder on the router");
    case RequestType::kSnapshot:
    case RequestType::kRestore:
      return MakeError("node-only command");
  }
  return MakeError("unhandled request type");
}

Response ClusterRouter::RouteLookup(const Request& request) {
  lookups_->Inc();
  // TLOOKUP pins the whole namespace to the tenant's owner set — same
  // placement key as the legacy "tenant:<id>|<query>" prefix convention.
  const std::string key = request.tenant.empty()
                              ? PlacementKey(request.query)
                              : tenant::PlacementKeyFor(request.tenant);
  std::vector<NodePool*> owners;
  NodePool* window_primary = nullptr;  // new-ring primary during migration
  {
    ReaderLock lock(state_mu_);
    owners = PoolsFor(ring_, key);
    if (next_ring_) {
      const std::string next_primary = next_ring_->PrimaryFor(key);
      const bool already =
          std::any_of(owners.begin(), owners.end(), [&](const NodePool* p) {
            return p->name() == next_primary;
          });
      if (!already) {
        const auto it = pools_.find(next_primary);
        if (it != pools_.end()) window_primary = it->second.get();
      }
    }
  }
  if (owners.empty()) return MakeError("empty ring");

  std::optional<Response> response;
  std::string error;
  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (i > 0) failovers_->Inc();
    response = owners[i]->Call(request, &error);
    if (Settles(response)) break;
    if (!response) node_errors_->Inc();
  }
  if (!Settles(response)) {
    if (response) return *response;  // every owner BUSY: surface it
    return MakeError("all owners unreachable: " + error);
  }

  // Handoff double-read: during the migration window the joining node may
  // already hold entries dual-written there; a MISS from the old owners is
  // not authoritative until the ring commits.
  if (response->type == ResponseType::kMiss && window_primary != nullptr) {
    double_reads_->Inc();
    const auto second = window_primary->Call(request, &error);
    if (second && second->type == ResponseType::kHit) {
      double_read_hits_->Inc();
      return *second;
    }
  }
  return *response;
}

Response ClusterRouter::RouteInsert(const Request& request) {
  inserts_->Inc();
  const std::string key = request.tenant.empty()
                              ? PlacementKey(request.key)
                              : tenant::PlacementKeyFor(request.tenant);
  std::vector<NodePool*> owners;
  std::vector<NodePool*> window_extras;  // new-ring owners not in owners
  {
    ReaderLock lock(state_mu_);
    owners = PoolsFor(ring_, key);
    if (next_ring_) {
      for (NodePool* p : PoolsFor(*next_ring_, key)) {
        const bool already = std::any_of(
            owners.begin(), owners.end(),
            [&](const NodePool* q) { return q->name() == p->name(); });
        if (!already) window_extras.push_back(p);
      }
    }
  }
  if (owners.empty()) return MakeError("empty ring");

  // The primary's verdict is the client's response; replicas and
  // dual-write targets absorb the same insert so failover/migration never
  // lose an entry, but their failures only count, they don't surface.
  std::optional<Response> primary_response;
  std::string error;
  for (std::size_t i = 0; i < owners.size(); ++i) {
    const auto response = owners[i]->Call(request, &error);
    if (!response) node_errors_->Inc();
    if (i > 0 && response) replica_writes_->Inc();
    if (!primary_response && Settles(response)) {
      primary_response = response;
    }
  }
  for (NodePool* p : window_extras) {
    const auto response = p->Call(request, &error);
    if (!response) {
      node_errors_->Inc();
    } else {
      dual_writes_->Inc();
    }
  }
  if (!primary_response) {
    return MakeError("no owner accepted the insert: " + error);
  }
  return *primary_response;
}

Response ClusterRouter::DoMigrate(const Request& request) {
  const double t0 = telemetry::WallSeconds();
  std::string error;
  const auto ep = ParseEndpoint(request.endpoint, &error);
  if (!ep) return MakeError("MIGRATE: " + error);

  // Reach the joining node before touching the ring: a typo'd endpoint
  // must not open a window.
  auto probe_pool = std::make_unique<NodePool>(
      request.node_name, *ep, options_.node, registry_);
  Request ping;
  ping.type = RequestType::kPing;
  if (!probe_pool->Call(ping, &error)) {
    return MakeError("MIGRATE: cannot reach joining node: " + error);
  }

  // Open the handoff window: writes start dual-routing immediately.
  HashRing target_ring(options_.ring);
  std::vector<NodePool*> sources;
  {
    WriterLock lock(state_mu_);
    if (next_ring_) return MakeError("MIGRATE: migration already in progress");
    if (ring_.HasNode(request.node_name)) {
      return MakeError("MIGRATE: node '" + request.node_name +
                       "' already on the ring");
    }
    if (ring_.num_nodes() == 0) {
      return MakeError("MIGRATE: seed the ring before migrating");
    }
    if (pools_.find(request.node_name) == pools_.end()) {
      pools_[request.node_name] = std::move(probe_pool);
    }
    next_ring_ = ring_;
    next_ring_->AddNode(request.node_name, *ep);
    target_ring = *next_ring_;
    for (const std::string& name : ring_.NodeNames()) {
      sources.push_back(pools_.at(name).get());
    }
  }
  NodePool* joiner = nullptr;
  {
    ReaderLock lock(state_mu_);
    joiner = pools_.at(request.node_name).get();
  }

  // Stream state: SNAPSHOT each existing node, keep only the entries the
  // new ring hands to the joiner, RESTORE them there.  Runs without the
  // state lock — the router keeps serving, dual-writes cover inserts that
  // land mid-stream.
  std::uint64_t moved_entries = 0;
  std::uint64_t moved_bytes = 0;
  std::string failure;
  for (NodePool* source : sources) {
    Request snap;
    snap.type = RequestType::kSnapshot;
    const auto blob = source->Call(snap, &error);
    if (!blob || blob->type != ResponseType::kSnapshotData) {
      failure = "MIGRATE: snapshot from " + source->name() + " failed: " +
                (blob ? blob->message : error);
      break;
    }
    std::vector<SemanticElement> keep;
    try {
      std::istringstream in(blob->message);
      serve::ForEachEngineSnapshotElement(in, [&](SemanticElement se) {
        // Tenant-owned entries migrate with their namespace, not their key.
        const std::string pkey =
            se.tenant.empty() ? PlacementKey(se.key)
                              : tenant::PlacementKeyFor(se.tenant);
        const auto owners = target_ring.OwnersFor(pkey);
        if (std::find(owners.begin(), owners.end(), request.node_name) !=
            owners.end()) {
          keep.push_back(std::move(se));
        }
      });
    } catch (const std::exception& e) {
      failure = "MIGRATE: bad snapshot from " + source->name() + ": " +
                e.what();
      break;
    }
    if (keep.empty()) continue;
    std::ostringstream packed;
    serve::WriteEngineSnapshot(packed, keep);
    Request restore;
    restore.type = RequestType::kRestore;
    restore.blob = std::move(packed).str();
    const std::size_t blob_size = restore.blob.size();
    const auto applied = joiner->Call(restore, &error);
    if (!applied || applied->type != ResponseType::kOk) {
      failure = "MIGRATE: restore to " + request.node_name + " failed: " +
                (applied ? applied->message : error);
      break;
    }
    moved_entries += keep.size();
    moved_bytes += blob_size;
    migration_bytes_->Inc(blob_size);
  }

  if (!failure.empty()) {
    // Abort: close the window, keep the old ring.  The joiner's pool stays
    // registered (workers may hold its pointer) but owns no keys.
    WriterLock lock(state_mu_);
    next_ring_.reset();
    return MakeError(failure);
  }

  // Commit: the new ring becomes the read ring in one swap.
  {
    WriterLock lock(state_mu_);
    ring_ = *next_ring_;
    next_ring_.reset();
    ring_version_gauge_->Set(static_cast<double>(ring_.version()));
    nodes_gauge_->Set(static_cast<double>(ring_.num_nodes()));
  }
  migrations_->Inc();
  migration_entries_->Inc(moved_entries);
  migration_seconds_->Set(telemetry::WallSeconds() - t0);

  Response r = MakeResponse(ResponseType::kOk);
  r.id = moved_entries;
  return r;
}

Response ClusterRouter::BuildCluster() const {
  Response r = MakeResponse(ResponseType::kStats);
  ReaderLock lock(state_mu_);
  r.stats = {
      {"ring_version", std::to_string(ring_.version())},
      {"nodes", std::to_string(ring_.num_nodes())},
      {"replication", std::to_string(options_.ring.replication)},
      {"vnodes_per_node", std::to_string(options_.ring.vnodes_per_node)},
      {"migrating", next_ring_ ? "1" : "0"},
  };
  std::size_t i = 0;
  for (const std::string& name : ring_.NodeNames()) {
    const std::string prefix = "node" + std::to_string(i++) + "_";
    const NodeEndpoint* ep = ring_.EndpointOf(name);
    const auto it = pools_.find(name);
    r.stats.emplace_back(prefix + "name", name);
    r.stats.emplace_back(prefix + "endpoint",
                         ep != nullptr ? ep->ToString() : "?");
    if (it != pools_.end()) {
      r.stats.emplace_back(prefix + "healthy",
                           it->second->healthy() ? "1" : "0");
      r.stats.emplace_back(prefix + "requests",
                           std::to_string(it->second->requests()));
      r.stats.emplace_back(prefix + "failures",
                           std::to_string(it->second->failures()));
    }
  }
  return r;
}

Response ClusterRouter::BuildStats() const {
  Response r = MakeResponse(ResponseType::kStats);
  registry_->Snapshot().AppendKeyValues(&r.stats);
  return r;
}

}  // namespace cortex::cluster
