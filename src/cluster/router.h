// ClusterRouter: the cluster tier's front door (DESIGN.md §10).  Speaks
// the cortexd wire protocol on both sides — clients connect to the router
// exactly as they would to a single node (same frames, same backpressure),
// and the router forwards to the owning cortexd nodes over pooled,
// HELLO-handshaked connections.
//
// Placement: every LOOKUP query / INSERT key reduces to a *placement key*
// — a "tenant:<id>|" prefix when present, else the query's IDF anchor
// token (core/sharded_cache PlacementAnchor), else the raw text — and the
// consistent-hash ring maps that key to `replication` distinct owners.
// Paraphrases share an anchor, so they land on the same node and the
// cluster preserves the single-node semantic hit rate.
//
// Request semantics:
//   * LOOKUP goes to the primary owner; on transport failure, timeout, or
//     BUSY the router fails over to the next replica (counted in
//     cortex_router_failovers).  A MISS from a healthy owner is
//     authoritative — replicas hold the same writes.
//   * INSERT is replicated to every owner; the first owner's verdict
//     (OK/REJECT) is the client's response, replica write failures are
//     counted, not surfaced.
//   * MIGRATE name endpoint — live rebalance, synchronous on the serving
//     worker: open the handoff window (the ring-with-the-new-node becomes
//     the *write* ring: inserts dual-write to the union of old and new
//     owners, lookups double-read old-then-new on a miss), stream a
//     SNAPSHOT from every existing node, filter it to the entries the new
//     ring assigns to the joining node, RESTORE them there, then commit
//     the new ring.  Reads stay on the old owners until commit, so no
//     request is dropped and no entry goes missing mid-handoff.
//   * CLUSTER returns ring + per-node status; STATS dumps the router's
//     metric registry (cortex_router_*, cortex_cluster_node_*).
//
// Threading mirrors serve/server.h: one acceptor feeding a bounded
// connection queue (overflow → BUSY + disconnect), a fixed worker pool,
// per-connection pipeline bounds.  Lock order (machine-checked):
// queue_mu_ (kRouterQueue 4) < state_mu_ (kRouterState 6) < each
// NodePool's mu_ (kRouterNodePool 8); network calls to nodes never happen
// under state_mu_ — workers copy the owner set out and release it first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/node_pool.h"
#include "embedding/hashed_embedder.h"
#include "serve/protocol.h"
#include "telemetry/metrics.h"
#include "util/ranked_mutex.h"
#include "util/thread_annotations.h"
#include "util/tokenizer.h"

namespace cortex::cluster {

struct RouterOptions {
  // Listen on a Unix-domain socket when non-empty; otherwise TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned; read back via port()

  std::size_t num_workers = 4;
  std::size_t max_pending_connections = 64;
  std::size_t max_pipeline = 64;
  std::size_t max_frame_bytes = serve::kDefaultMaxFrameBytes;

  HashRingOptions ring;
  NodePoolOptions node;

  // Semantic placement model: when set, keys place by PlacementAnchor
  // (paraphrases co-locate).  Borrowed, must be IDF-fitted and must
  // outlive the router; when null the raw query/key hashes.
  const HashedEmbedder* embedder = nullptr;

  // Registry for cortex_router_* / cortex_cluster_* instruments; the
  // router owns a private one when null.
  telemetry::MetricRegistry* registry = nullptr;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(RouterOptions options = {});
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  // Seeds the ring before Start(); thread-safe afterwards too (exposed so
  // tests can grow rings directly — live traffic should use MIGRATE).
  bool AddNode(const std::string& name, const std::string& endpoint,
               std::string* error = nullptr);

  bool Start(std::string* error = nullptr);
  void Stop();
  // Graceful: stop accepting, let live connections flush owed responses,
  // then Stop().  Same contract as CortexServer::Drain.
  void Drain(double timeout_sec = 5.0);

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  int port() const noexcept { return port_; }
  const RouterOptions& options() const noexcept { return options_; }
  telemetry::MetricRegistry* registry() const noexcept { return registry_; }

  std::uint64_t ring_version() const;
  bool migrating() const;
  std::size_t num_nodes() const;

  // The placement key a query/insert-key reduces to (tenant prefix, IDF
  // anchor, or raw text) — exposed so tests can pin routing.
  std::string PlacementKey(std::string_view text) const;
  // Current-ring owners for the text's placement key.
  std::vector<std::string> OwnersFor(std::string_view text) const;

 private:
  void AcceptLoop() EXCLUDES(queue_mu_);
  // Waits on queue_cv_ through a std::unique_lock, which clang's analysis
  // cannot see through — excluded from analysis, lock order still
  // machine-checked by RankedMutex.
  void WorkerLoop() NO_THREAD_SAFETY_ANALYSIS;
  void ServeConnection(int fd);
  serve::Response Execute(const serve::Request& request);

  serve::Response RouteLookup(const serve::Request& request);
  serve::Response RouteInsert(const serve::Request& request);
  serve::Response DoMigrate(const serve::Request& request);
  serve::Response BuildCluster() const;
  serve::Response BuildStats() const;

  // Owner pools for a placement key on the given ring; skips names with no
  // pool (cannot happen in steady state — belt and braces).
  std::vector<NodePool*> PoolsFor(const HashRing& ring,
                                  std::string_view placement_key) const
      REQUIRES_SHARED(state_mu_);

  const RouterOptions options_;
  const Tokenizer tokenizer_;

  // Listener state is written only during Start()/Stop(), strictly
  // before the worker threads exist / after they have joined, so no lock
  // guards it (cortex_analyzer verifies the rest of this class).
  int listen_fd_ = -1;         // cortex-analyzer: allow(guarded-by)
  int port_ = 0;               // cortex-analyzer: allow(guarded-by)
  std::string bound_unix_path_;  // cortex-analyzer: allow(guarded-by)

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::int64_t> active_connections_{0};

  RankedMutex queue_mu_{LockRank::kRouterQueue, "router.queue_mu"};
  std::condition_variable_any queue_cv_;
  std::deque<int> conn_queue_ GUARDED_BY(queue_mu_);

  // Ring + migration-window state.  `ring_` is what reads route by; while
  // a migration window is open, `next_ring_` (ring_ plus the joining
  // node) is what writes route by.  Pools are created once per node name
  // and never destroyed while running — workers hold raw NodePool*
  // outside the lock.
  mutable RankedSharedMutex state_mu_{LockRank::kRouterState,
                                      "router.state_mu"};
  HashRing ring_ GUARDED_BY(state_mu_);
  std::optional<HashRing> next_ring_ GUARDED_BY(state_mu_);
  std::unordered_map<std::string, std::unique_ptr<NodePool>> pools_
      GUARDED_BY(state_mu_);
  std::uint64_t pool_seed_ GUARDED_BY(state_mu_) = 0x9e3779b9ULL;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  telemetry::MetricRegistry* registry_ = nullptr;
  std::unique_ptr<telemetry::MetricRegistry> registry_owned_;
  telemetry::Counter* connections_accepted_ = nullptr;
  telemetry::Counter* connections_rejected_ = nullptr;
  telemetry::Counter* requests_served_ = nullptr;
  telemetry::Counter* requests_busy_ = nullptr;
  telemetry::Counter* protocol_errors_ = nullptr;
  telemetry::Counter* lookups_ = nullptr;
  telemetry::Counter* inserts_ = nullptr;
  telemetry::Counter* failovers_ = nullptr;
  telemetry::Counter* double_reads_ = nullptr;
  telemetry::Counter* double_read_hits_ = nullptr;
  telemetry::Counter* dual_writes_ = nullptr;
  telemetry::Counter* replica_writes_ = nullptr;
  telemetry::Counter* node_errors_ = nullptr;
  telemetry::Counter* migrations_ = nullptr;
  telemetry::Counter* migration_entries_ = nullptr;
  telemetry::Counter* migration_bytes_ = nullptr;
  telemetry::Gauge* migration_seconds_ = nullptr;  // last migration
  telemetry::Gauge* ring_version_gauge_ = nullptr;
  telemetry::Gauge* nodes_gauge_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  telemetry::AtomicHistogram* request_seconds_ = nullptr;
};

}  // namespace cortex::cluster
