// NodePool: the router's connection pool and health view for one cluster
// node.  Each Call() borrows a pooled connection (dialing + HELLO
// handshaking as "router" on demand), runs one request/response round
// trip, and returns the connection to the idle stack on success.
//
// Health tracking: consecutive failures beyond a threshold mark the node
// unhealthy; while unhealthy, calls fail fast (so the router fails over to
// a replica immediately instead of burning a timeout per request) except
// for one probe per backoff window, which re-opens the node on success.
// A failure on a *pooled* connection is retried once on a fresh dial —
// the server may simply have closed an idle socket.
//
// Thread-safe.  The pool mutex (LockRank::kRouterNodePool) only guards the
// idle stack and health counters — network I/O always happens outside it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "net/latency.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "telemetry/metrics.h"
#include "util/ranked_mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace cortex::cluster {

struct NodePoolOptions {
  // Socket send/receive timeout per call; a timeout is treated as a node
  // failure (the router's failover signal).
  double call_timeout_sec = 2.0;
  std::size_t max_idle_connections = 8;
  // Consecutive failures before the node is marked unhealthy.
  int unhealthy_after_failures = 3;
  // While unhealthy, at most one probe call per this window; everything
  // else fails fast.
  double retry_backoff_sec = 1.0;
  // Response-frame cap: SNAPSHOT blobs dwarf the protocol default.
  std::size_t max_frame_bytes = std::size_t{64} << 20;
  // Optional simulated inter-node hop (net/latency): sampled and slept
  // before every call.  Borrowed; may be null (no added latency).
  const LatencyDistribution* hop_latency = nullptr;
  std::uint64_t seed = 1;
};

class NodePool {
 public:
  // `registry` is borrowed and must outlive the pool; per-node counters
  // are published as cortex_cluster_node_<name>_{requests,failures,dials}.
  NodePool(std::string name, NodeEndpoint endpoint, NodePoolOptions options,
           telemetry::MetricRegistry* registry);

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // One round trip.  Returns nullopt and fills `error` on transport
  // failure, handshake rejection, or fast-fail while unhealthy.
  std::optional<serve::Response> Call(const serve::Request& request,
                                      std::string* error = nullptr);

  bool healthy() const;
  const std::string& name() const noexcept { return name_; }
  const NodeEndpoint& endpoint() const noexcept { return endpoint_; }
  std::uint64_t requests() const { return requests_->Value(); }
  std::uint64_t failures() const { return failures_->Value(); }

 private:
  bool Dial(serve::BlockingClient* conn, std::string* error);
  void OnSuccess(serve::BlockingClient conn) EXCLUDES(mu_);
  void OnFailure() EXCLUDES(mu_);

  const std::string name_;
  const NodeEndpoint endpoint_;
  const NodePoolOptions options_;

  mutable RankedMutex mu_{LockRank::kRouterNodePool, "nodepool.mu"};
  std::vector<serve::BlockingClient> idle_ GUARDED_BY(mu_);
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  bool unhealthy_ GUARDED_BY(mu_) = false;
  double probe_at_ GUARDED_BY(mu_) = 0.0;  // next allowed probe while down
  Rng rng_ GUARDED_BY(mu_);

  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* failures_ = nullptr;
  telemetry::Counter* dials_ = nullptr;
  telemetry::Counter* fast_fails_ = nullptr;
};

}  // namespace cortex::cluster
