#include "cluster/node_pool.h"

#include <chrono>
#include <thread>
#include <utility>

namespace cortex::cluster {

namespace {

void SetError(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}

}  // namespace

NodePool::NodePool(std::string name, NodeEndpoint endpoint,
                   NodePoolOptions options,
                   telemetry::MetricRegistry* registry)
    : name_(std::move(name)),
      endpoint_(std::move(endpoint)),
      options_(options),
      rng_(options.seed) {
  const std::string prefix = "cortex_cluster_node_" + name_ + "_";
  requests_ = registry->GetCounter(prefix + "requests");
  failures_ = registry->GetCounter(prefix + "failures");
  dials_ = registry->GetCounter(prefix + "dials");
  fast_fails_ = registry->GetCounter(prefix + "fast_fails");
}

bool NodePool::healthy() const {
  MutexLock lock(mu_);
  return !unhealthy_;
}

bool NodePool::Dial(serve::BlockingClient* conn, std::string* error) {
  dials_->Inc();
  bool ok = endpoint_.unix_path.empty()
                ? conn->ConnectTcp(endpoint_.host, endpoint_.port, error)
                : conn->ConnectUnix(endpoint_.unix_path, error);
  if (!ok) return false;
  conn->SetCallTimeout(options_.call_timeout_sec);
  conn->SetMaxFrameBytes(options_.max_frame_bytes);
  return conn->Handshake("router", error);
}

void NodePool::OnSuccess(serve::BlockingClient conn) {
  MutexLock lock(mu_);
  consecutive_failures_ = 0;
  unhealthy_ = false;
  if (idle_.size() < options_.max_idle_connections) {
    idle_.push_back(std::move(conn));
  }
}

void NodePool::OnFailure() {
  failures_->Inc();
  MutexLock lock(mu_);
  if (++consecutive_failures_ >= options_.unhealthy_after_failures) {
    unhealthy_ = true;
    probe_at_ = telemetry::WallSeconds() + options_.retry_backoff_sec;
  }
}

std::optional<serve::Response> NodePool::Call(const serve::Request& request,
                                              std::string* error) {
  serve::BlockingClient conn;
  bool reused = false;
  double hop_sec = 0.0;
  {
    MutexLock lock(mu_);
    if (unhealthy_) {
      const double now = telemetry::WallSeconds();
      if (now < probe_at_) {
        fast_fails_->Inc();
        SetError(error, "node " + name_ + " unhealthy (in backoff)");
        return std::nullopt;
      }
      // This call is the probe; push the window so concurrent callers keep
      // failing fast instead of piling onto a dead node.
      probe_at_ = now + options_.retry_backoff_sec;
    }
    if (!idle_.empty()) {
      conn = std::move(idle_.back());
      idle_.pop_back();
      reused = true;
    }
    if (options_.hop_latency != nullptr) {
      hop_sec = options_.hop_latency->Sample(rng_);
    }
  }
  if (hop_sec > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(hop_sec));
  }

  if (!reused && !Dial(&conn, error)) {
    OnFailure();
    return std::nullopt;
  }

  requests_->Inc();
  auto response = conn.Call(request, error);
  if (!response && reused) {
    // The server may have closed the idle socket between calls; a fresh
    // dial distinguishes "stale pooled connection" from "node down".
    if (Dial(&conn, error)) {
      response = conn.Call(request, error);
    }
  }
  if (!response) {
    OnFailure();
    if (error && !error->empty()) {
      *error = "node " + name_ + ": " + *error;
    }
    return std::nullopt;
  }
  OnSuccess(std::move(conn));
  return response;
}

}  // namespace cortex::cluster
