// Sine: the Semantic Retrieval Index (paper §4.2).
//
// Two-stage retrieval over Semantic Elements:
//   stage 1 — coarse filter: ANN search over key embeddings, keeping
//             candidates with cosine similarity >= tau_sim;
//   stage 2 — fine validation: the semantic judger scores whether each
//             candidate's cached result answers the new query; the best
//             candidate with score >= tau_lsm is the (single) match.
//
// Sine is deliberately *not* a cache: it stores no values and makes no
// retention decisions.  SemanticCache layers hit/eviction/prefetch
// semantics on top (§4.3).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ann/vector_index.h"
#include "core/semantic_element.h"
#include "embedding/embedder.h"
#include "llm/judger_model.h"

namespace cortex {

struct SineOptions {
  // Stage-1 similarity floor.  The paper quotes 0.9 for Qwen3 embeddings;
  // the equivalent operating point for Cortex's hashed embedder is lower
  // (see docs/calibration in DESIGN.md) — the trade-off it controls is the
  // same: lower = more recall, more judger work.
  // Calibrated for the IDF-fitted HashedEmbedder: same-topic paraphrase
  // pairs centre at ~0.89 cosine (p10 ~0.79), near-miss trap pairs at
  // ~0.72 (max ~0.85), unrelated pairs at ~0.03.  0.55 keeps stage-1
  // recall of true paraphrases near-perfect while excluding unrelated
  // queries.
  double tau_sim = 0.55;
  // Stage-2 judger acceptance threshold (recalibrated online, §4.2).
  double tau_lsm = 0.6;
  // Candidates forwarded from stage 1 to the judger.
  std::size_t top_k = 6;
  // When true stage 2 is skipped and the top ANN candidate with
  // similarity >= ann_only_threshold is accepted (the Agent_ANN ablation).
  bool use_judger = true;
  // 0.70 sits below the trap-pair mean (~0.72): similarity alone accepts
  // many near-miss siblings while matching paraphrases well — the unfavourable
  // precision-recall trade-off of similarity-only caching (§2.4).
  double ann_only_threshold = 0.70;
};

struct SineCandidate {
  SeId id = 0;
  double similarity = 0.0;
  double judger_score = 0.0;  // 0 when the judger did not run
};

struct SineLookupResult {
  std::optional<SineCandidate> match;  // accepted semantic match, if any
  std::vector<SineCandidate> judged;   // all stage-2 candidates (telemetry)
  std::size_t ann_candidates = 0;      // stage-1 survivors
  std::size_t judger_calls = 0;
};

// Optional per-stage wall time, filled only when a caller passes a
// non-null pointer (zero overhead otherwise).  Plain std::chrono so core/
// carries no telemetry dependency; the serving layer converts to spans.
struct SineTiming {
  double ann_seconds = 0.0;     // stage-1 ANN search
  double judger_seconds = 0.0;  // stage-2 judger validation
};

class Sine {
 public:
  using SeAccessor = std::function<const SemanticElement*(SeId)>;

  // embedder/judger are borrowed and must outlive the index.
  Sine(const Embedder* embedder, std::unique_ptr<VectorIndex> index,
       const JudgerModel* judger, SineOptions options = {});

  // Embeds the query (callers that already hold an embedding can pass it
  // to avoid recomputation).
  Vector EmbedQuery(std::string_view query) const;

  // Runs the two-stage retrieval.  `get_se` resolves candidate ids to SEs
  // (returning nullptr skips the candidate — e.g. concurrently evicted).
  // `timing`, when non-null, receives per-stage wall time.
  SineLookupResult Lookup(std::string_view query,
                          const Vector& query_embedding,
                          const SeAccessor& get_se,
                          SineTiming* timing = nullptr) const;

  void Insert(const SemanticElement& se);
  void Remove(SeId id);

  std::size_t size() const { return index_->size(); }
  const VectorIndex& index() const noexcept { return *index_; }
  const SineOptions& options() const noexcept { return options_; }
  const JudgerModel* judger() const noexcept { return judger_; }

  // Online recalibration hook (Algorithm 1's UpdateSystem).
  void set_tau_lsm(double tau) noexcept { options_.tau_lsm = tau; }

 private:
  const Embedder* embedder_;
  std::unique_ptr<VectorIndex> index_;
  const JudgerModel* judger_;
  SineOptions options_;
};

}  // namespace cortex
