#include "core/prefetcher.h"

#include <algorithm>

namespace cortex {

MarkovPrefetcher::MarkovPrefetcher(PrefetcherOptions options)
    : options_(options) {}

void MarkovPrefetcher::Record(std::string_view query) {
  if (previous_query_ && *previous_query_ != query) {
    RecordTransition(*previous_query_, query);
  }
  previous_query_ = std::string(query);
}

void MarkovPrefetcher::Record(std::uint64_t session_id,
                              std::string_view query) {
  const auto it = session_last_.find(session_id);
  if (it != session_last_.end()) {
    if (it->second != query) RecordTransition(it->second, query);
    it->second = std::string(query);
  } else {
    if (session_last_.size() > 4096) session_last_.clear();  // soft cap
    session_last_.emplace(session_id, std::string(query));
  }
}

void MarkovPrefetcher::RecordTransition(std::string_view from,
                                        std::string_view to) {
  auto& state = transitions_[std::string(from)];
  // Decay existing mass so stale transitions fade under drift.
  if (!state.successors.empty()) {
    state.total = 0.0;
    for (auto& [q, count] : state.successors) {
      count *= options_.decay_factor;
      state.total += count;
    }
  }
  auto& count = state.successors[std::string(to)];
  count += 1.0;
  state.total += 1.0;
  // Cap the successor fan-out: drop the weakest.
  if (state.successors.size() > options_.max_successors_per_state) {
    auto weakest = state.successors.begin();
    for (auto it = state.successors.begin(); it != state.successors.end();
         ++it) {
      if (it->second < weakest->second) weakest = it;
    }
    state.total -= weakest->second;
    state.successors.erase(weakest);
  }
}

std::vector<Prediction> MarkovPrefetcher::Predict(
    std::string_view query) const {
  std::vector<Prediction> out;
  const auto it = transitions_.find(std::string(query));
  if (it == transitions_.end() || it->second.total <= 0.0) return out;
  const auto& state = it->second;
  for (const auto& [next, count] : state.successors) {
    if (count < static_cast<double>(options_.min_observations)) continue;
    const double p = count / state.total;
    if (p >= options_.confidence_threshold) {
      out.push_back({next, p});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.probability > b.probability;
  });
  if (out.size() > options_.max_predictions) {
    out.resize(options_.max_predictions);
  }
  return out;
}

double MarkovPrefetcher::TransitionProbability(std::string_view from,
                                               std::string_view to) const {
  const auto it = transitions_.find(std::string(from));
  if (it == transitions_.end() || it->second.total <= 0.0) return 0.0;
  const auto jt = it->second.successors.find(std::string(to));
  if (jt == it->second.successors.end()) return 0.0;
  return jt->second / it->second.total;
}

void MarkovPrefetcher::Reset() {
  transitions_.clear();
  previous_query_.reset();
  session_last_.clear();
}

}  // namespace cortex
