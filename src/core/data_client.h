// DataClient: the transparent entry point of Fig. 4 (§3.3).
//
// The agent application does not call Cortex explicitly — it emits tagged
// text (<think>…<search>q</search>) exactly as it would when wired straight
// to a tool.  The data client intercepts that output, lifts the tool call
// out of the tags, serves it through the engine (cache hit or delegated
// remote fetch), and hands back a ready-to-append <info> observation.  No
// agent-side changes required.
//
// This class is pure logic over the engine: latency/scheduling are the
// caller's concern (the simulation resolvers model them; a real deployment
// would wrap the fetch delegate around its RPC stack).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "core/engine.h"
#include "llm/tags.h"

namespace cortex {

class DataClient {
 public:
  // Delegate used on a cache miss: fetches the knowledge for `query` from
  // the remote data service, returning the retrieved text and its cost
  // profile.  Empty `info` marks a failed fetch.
  struct FetchResultView {
    std::string info;
    double latency_sec = 0.0;
    double cost_dollars = 0.0;
  };
  using RemoteFetcher =
      std::function<FetchResultView(std::string_view query, double now)>;

  // engine is borrowed and must outlive the client.
  DataClient(CortexEngine* engine, RemoteFetcher fetcher);

  struct TurnResult {
    // True if the agent output contained a tool call at all.
    bool tool_call = false;
    // The extracted query (empty when !tool_call).
    std::string query;
    // The observation to append to the agent context, already wrapped as
    // <info>...</info>.  Unset when there was no tool call.
    std::optional<std::string> observation;
    bool from_cache = false;
    bool fetch_failed = false;
  };

  // Intercepts one raw agent turn.  `session_id` keys the prefetch stream;
  // `now` is the caller's clock.
  TurnResult InterceptTurn(std::string_view agent_output, double now,
                           std::uint64_t session_id = 0);

  // Prefetch proposals the engine made during interception that the caller
  // should fetch asynchronously (cleared on each InterceptTurn call).
  const std::vector<Prediction>& pending_prefetches() const noexcept {
    return pending_prefetches_;
  }
  // Executes the pending prefetches synchronously through the delegate
  // (convenience for non-simulated deployments).
  std::size_t RunPendingPrefetches(double now);

  std::uint64_t turns_seen() const noexcept { return turns_seen_; }
  std::uint64_t tool_calls_seen() const noexcept { return tool_calls_seen_; }
  std::uint64_t served_from_cache() const noexcept {
    return served_from_cache_;
  }

 private:
  CortexEngine* engine_;
  RemoteFetcher fetcher_;
  std::vector<Prediction> pending_prefetches_;
  std::uint64_t turns_seen_ = 0;
  std::uint64_t tool_calls_seen_ = 0;
  std::uint64_t served_from_cache_ = 0;
};

}  // namespace cortex
