#include "core/snapshot.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cortex {

namespace {

void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void WriteVector(std::ostream& out, const Vector& v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::uint32_t ReadU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
double ReadF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::string ReadString(std::istream& in) {
  const auto size = ReadU64(in);
  if (size > (1ULL << 30)) {
    throw std::runtime_error("snapshot: implausible string length");
  }
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  return s;
}
Vector ReadVector(std::istream& in) {
  const auto size = ReadU64(in);
  if (size > (1ULL << 24)) {
    throw std::runtime_error("snapshot: implausible vector length");
  }
  Vector v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(float)));
  return v;
}

void CheckStream(const std::ios& stream, const char* what) {
  if (!stream.good()) {
    throw std::runtime_error(std::string("snapshot: stream failure while ") +
                             what);
  }
}

}  // namespace

void WriteSnapshotHeader(std::ostream& out, std::uint64_t entry_count,
                         std::uint32_t version) {
  if (version < kSnapshotMinReadVersion || version > kSnapshotVersion) {
    throw std::runtime_error("snapshot: cannot write version " +
                             std::to_string(version));
  }
  WriteU32(out, kSnapshotMagic);
  WriteU32(out, version);
  WriteU64(out, entry_count);
}

void WriteSnapshotElement(std::ostream& out, const SemanticElement& se,
                          std::uint32_t version) {
  WriteString(out, se.key);
  WriteString(out, se.value);
  WriteVector(out, se.embedding);
  WriteF64(out, se.staticity);
  WriteU64(out, se.frequency);
  WriteF64(out, se.retrieval_latency_sec);
  WriteF64(out, se.retrieval_cost_dollars);
  WriteF64(out, se.created_at);
  WriteF64(out, se.last_access);
  WriteF64(out, se.expiration_time);
  if (version >= 2) {
    WriteString(out, se.tenant);
    WriteU32(out, se.shareable ? 1 : 0);
  }
}

std::uint64_t ForEachSnapshotElement(
    std::istream& in, const std::function<void(SemanticElement)>& fn) {
  if (ReadU32(in) != kSnapshotMagic) {
    throw std::runtime_error("snapshot: bad magic");
  }
  const auto version = ReadU32(in);
  if (version < kSnapshotMinReadVersion || version > kSnapshotVersion) {
    throw std::runtime_error("snapshot: unsupported version " +
                             std::to_string(version));
  }
  const auto count = ReadU64(in);
  CheckStream(in, "reading header");
  for (std::uint64_t i = 0; i < count; ++i) {
    SemanticElement se;
    se.key = ReadString(in);
    se.value = ReadString(in);
    se.embedding = ReadVector(in);
    se.staticity = ReadF64(in);
    se.frequency = ReadU64(in);
    se.retrieval_latency_sec = ReadF64(in);
    se.retrieval_cost_dollars = ReadF64(in);
    se.created_at = ReadF64(in);
    se.last_access = ReadF64(in);
    se.expiration_time = ReadF64(in);
    if (version >= 2) {
      // Tenancy fields; a v1 record keeps the defaults (shared pool,
      // shareable) set by the SemanticElement initializers.
      se.tenant = ReadString(in);
      se.shareable = ReadU32(in) != 0;
    }
    CheckStream(in, "reading entry");
    fn(std::move(se));
  }
  return count;
}

SnapshotStats SaveCacheSnapshot(const SemanticCache& cache,
                                std::ostream& out) {
  SnapshotStats stats;
  WriteSnapshotHeader(out, cache.size());
  for (const auto& [id, se] : cache.entries()) {
    WriteSnapshotElement(out, se);
    ++stats.entries_written;
  }
  CheckStream(out, "writing");
  return stats;
}

SnapshotStats LoadCacheSnapshot(SemanticCache& cache, std::istream& in,
                                double now) {
  SnapshotStats stats;
  ForEachSnapshotElement(in, [&](SemanticElement se) {
    if (se.ExpiredAt(now)) {
      ++stats.entries_expired;
      return;
    }
    if (cache.RestoreElement(std::move(se), now)) {
      ++stats.entries_restored;
    } else {
      ++stats.entries_rejected;
    }
  });
  return stats;
}

SnapshotStats SaveCacheSnapshotFile(const SemanticCache& cache,
                                    const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("snapshot: cannot open " + path);
  return SaveCacheSnapshot(cache, out);
}

SnapshotStats LoadCacheSnapshotFile(SemanticCache& cache,
                                    const std::string& path, double now) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open " + path);
  return LoadCacheSnapshot(cache, in, now);
}

}  // namespace cortex
