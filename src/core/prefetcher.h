// MarkovPrefetcher (paper §4.3, Algorithm 3): a first-order Markov model
// over the stream of validated queries.  It learns P(q_next | q) from
// consecutive observations and proposes prefetches whose probability clears
// a confidence threshold.  Speculative entries enter the cache with zero
// frequency, so LCFU evicts them first if they never pay off — the paper's
// low-risk, self-correcting loop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cortex {

struct PrefetcherOptions {
  double confidence_threshold = 0.5;  // Algorithm 3's theta
  std::size_t max_predictions = 2;    // prefetches proposed per observation
  // Transition counts are capped per state; old mass decays so the model
  // tracks drifting workloads.
  std::size_t max_successors_per_state = 8;
  double decay_factor = 0.98;  // applied to a state's counts on update
  std::size_t min_observations = 2;  // successor support needed to predict
};

struct Prediction {
  std::string query;
  double probability = 0.0;
};

class MarkovPrefetcher {
 public:
  explicit MarkovPrefetcher(PrefetcherOptions options = {});

  // Observes the next validated query in the stream; learns the transition
  // from the previously observed query.  With concurrent agent sessions the
  // global stream interleaves unrelated tasks, so callers that know the
  // session should use the keyed overload — transitions are only meaningful
  // within one agent's think->act chain.
  void Record(std::string_view query);
  void Record(std::uint64_t session_id, std::string_view query);

  // Directly learns a (from -> to) transition.
  void RecordTransition(std::string_view from, std::string_view to);

  // Predictions for what follows `query`, filtered by the confidence
  // threshold and support, best-first, at most max_predictions.
  std::vector<Prediction> Predict(std::string_view query) const;

  // Raw transition probability estimate (testing/diagnostics).
  double TransitionProbability(std::string_view from,
                               std::string_view to) const;

  std::size_t num_states() const noexcept { return transitions_.size(); }
  void Reset();

 private:
  struct StateCounts {
    std::unordered_map<std::string, double> successors;
    double total = 0.0;
  };

  PrefetcherOptions options_;
  std::unordered_map<std::string, StateCounts> transitions_;
  std::optional<std::string> previous_query_;  // global-stream tracking
  // Per-session last query; sessions are short-lived, entries are bounded
  // by pruning the oldest once the map grows past a soft cap.
  std::unordered_map<std::uint64_t, std::string> session_last_;
};

}  // namespace cortex
