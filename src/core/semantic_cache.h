// SemanticCache: the cache architecture layered on Sine (paper §4.3).
//
// Turns Sine's probabilistic matches into deterministic cache behaviour:
//   * a lookup is a *hit* only when a candidate passes both retrieval
//     stages — a hit increments the SE's confirmed frequency;
//   * capacity is bounded (in value tokens); admission evicts expired items
//     first (TTL purge), then the lowest-scoring items under the configured
//     eviction policy (LCFU by default, LRU/LFU for the Table-6 baselines);
//   * every entry carries a staticity-scaled TTL, so even high-value items
//     are periodically refreshed (§4.3's aging mechanism).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/eviction.h"
#include "core/sine.h"
#include "util/count_min.h"

namespace cortex {

struct SemanticCacheOptions {
  // Capacity in value tokens; "cache ratio" benches set this to
  // ratio x workload knowledge footprint.
  double capacity_tokens = 50000.0;
  SineOptions sine;
  // TTL grows linearly with staticity: stat=1 -> min, stat=10 -> max.
  bool ttl_enabled = true;
  double min_ttl_sec = 600.0;
  double max_ttl_sec = 4.0 * 3600.0;

  // Admission doorkeeper (TinyLFU-style) — an answer to §3.2's open
  // question "how should admission operate".  When the cache is under
  // capacity pressure, newly fetched knowledge is only admitted once its
  // *value* has been fetched at least `admission_threshold` times within
  // the recent window (tracked by a count-min sketch, so semantically
  // equivalent queries that fetch the same knowledge count together).
  // One-hit-wonder fetches then stop evicting proven content.
  bool admission_enabled = false;
  std::uint32_t admission_threshold = 2;
  // Pressure point: admission control only engages above this fill level
  // (an underfull cache should take everything).
  double admission_pressure = 0.9;

  // Cross-tenant promotion (DESIGN.md §12): a byte-identical value
  // inserted (with shareable=true) by this many *distinct* tenants
  // graduates to the shared pool, where every tenant's lookups can match
  // it.  0 disables promotion entirely.
  std::size_t promote_distinct_tenants = 0;
  // Promotion additionally requires the value's staticity to be at least
  // this floor — volatile knowledge stays private even when popular.
  double promote_min_staticity = 0.0;
  // Bound on distinct values the promotion tracker follows at once; new
  // values stop accumulating evidence when it is full.
  std::size_t promote_tracker_capacity = 4096;
};

struct CacheHit {
  SeId id = 0;
  std::string value;
  std::string matched_key;
  double similarity = 0.0;
  double judger_score = 0.0;
};

struct CacheCounters {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t rejected_too_large = 0;
  std::uint64_t dedup_refreshes = 0;
  std::uint64_t admission_rejects = 0;
  // Inserts rejected because the value alone exceeds the tenant's budget.
  std::uint64_t budget_rejects = 0;
  // Private SEs retagged into the shared pool by cross-tenant promotion.
  std::uint64_t promotions = 0;

  double HitRate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

// Optional per-stage wall time for a Probe, filled only when the caller
// passes a non-null pointer.  Plain doubles (std::chrono durations) so
// core/ stays free of telemetry dependencies; the serving layer converts
// these to trace spans and histogram samples.
struct ProbeTiming {
  double embed_seconds = 0.0;
  double ann_seconds = 0.0;
  double judger_seconds = 0.0;
};

// Optional wall time spent on TTL purge + eviction inside an Insert.
struct InsertTiming {
  double evict_seconds = 0.0;
};

struct InsertRequest {
  std::string key;
  std::string value;
  // Pass the embedding if already computed during the miss lookup;
  // otherwise the cache embeds the key itself.
  std::optional<Vector> embedding;
  double staticity = 5.0;
  double retrieval_latency_sec = 0.0;
  double retrieval_cost_dollars = 0.0;
  // A prefetched SE enters with zero confirmed frequency (§4.3).
  std::uint64_t initial_frequency = 0;
  // Owning namespace; empty inserts straight into the shared pool.
  std::string tenant;
  // Privacy gate: may this value ever graduate to the shared pool?
  bool shareable = true;
  // Token budget for `tenant` (0 = unlimited).  Supplied by the serving
  // layer from the TenantRegistry; the core only enforces it, keeping
  // quota *policy* out of core/.
  double budget_tokens = 0.0;
};

class SemanticCache {
 public:
  SemanticCache(const Embedder* embedder, std::unique_ptr<VectorIndex> index,
                const JudgerModel* judger,
                std::unique_ptr<EvictionPolicy> eviction,
                SemanticCacheOptions options = {});

  struct LookupResult {
    std::optional<CacheHit> hit;
    // The query's embedding, reusable by an insert after a miss.
    Vector query_embedding;
    // Stage telemetry for latency modelling and recalibration logging.
    SineLookupResult sine;
  };

  // Two-stage semantic lookup at time `now`, scoped to `tenant`: only the
  // tenant's own namespace plus the shared pool can match.  A hit bumps
  // the SE's frequency and last_access.
  LookupResult Lookup(std::string_view query, double now,
                      std::string_view tenant = {});

  // The read-only half of Lookup: identical two-stage retrieval semantics,
  // but no mutation at all — no counter updates, no frequency bump, and no
  // lazy TTL purge (expired or not-yet-visible entries are skipped rather
  // than removed).  Safe to run concurrently with other const methods; the
  // serving layer calls it under a per-shard shared lock.  `timing`, when
  // non-null, receives per-stage wall time.
  LookupResult Probe(std::string_view query, double now,
                     ProbeTiming* timing = nullptr,
                     std::string_view tenant = {}) const;

  // The mutating half: counts the lookup (and hit) and bumps the matched
  // SE's confirmed frequency / last_access.  The SE may have been evicted
  // between probe and commit (concurrent serving); the hit still counts —
  // the caller served the value — but the bump is skipped.
  void CommitLookup(const LookupResult& result, double now);

  // Inserts (evicting as needed); returns the new SE's id, or nullopt when
  // the value alone exceeds capacity.  Re-inserting an existing exact key
  // replaces that entry.  If an SE with a byte-identical value already
  // exists, the insert dedups onto it instead: the existing SE is
  // refreshed (frequency credited, TTL renewed) and its id returned —
  // re-fetching the same knowledge under a different phrasing must not
  // spend capacity twice.  `timing`, when non-null, receives the wall time
  // spent purging + evicting to make room.
  std::optional<SeId> Insert(InsertRequest request, double now,
                             InsertTiming* timing = nullptr);

  // Re-admits a fully-populated SE (e.g. from a snapshot), preserving its
  // accumulated metadata — frequency, timestamps, expiration — instead of
  // resetting it the way Insert does.  Subject to the usual capacity,
  // key-replace, value-dedup, and TTL rules; ids are reassigned.
  std::optional<SeId> RestoreElement(SemanticElement se, double now);

  // Exact-key presence probe (Algorithm 3's Cache.Contains guard), scoped
  // to one namespace: the same key may exist independently per tenant.
  bool ContainsKey(std::string_view key, std::string_view tenant = {}) const;
  // Value-identity presence probe (is this knowledge already resident?).
  bool ContainsValue(std::string_view value) const;

  // TTL purge; returns the number of entries removed.
  std::size_t RemoveExpired(double now);

  bool Remove(SeId id);
  const SemanticElement* Get(SeId id) const;

  // Per-namespace accounting (tokens resident / evictions suffered).  The
  // shared pool appears under the empty tenant id.
  struct TenantUsage {
    double tokens = 0.0;
    std::uint64_t evictions = 0;
  };
  TenantUsage TenantUsageFor(std::string_view tenant) const;
  const std::unordered_map<std::string, TenantUsage>& tenant_usage()
      const noexcept {
    return tenant_usage_;
  }

  std::size_t size() const noexcept { return store_.size(); }
  double usage_tokens() const noexcept { return usage_tokens_; }
  double capacity_tokens() const noexcept { return options_.capacity_tokens; }
  const CacheCounters& counters() const noexcept { return counters_; }
  const EvictionPolicy& eviction_policy() const noexcept { return *eviction_; }
  Sine& sine() noexcept { return sine_; }
  const Sine& sine() const noexcept { return sine_; }

  // Iteration support for diagnostics and tests.
  const std::unordered_map<SeId, SemanticElement>& entries() const noexcept {
    return store_;
  }

 private:
  // Tenant-aware eviction: victims come from the offending tenant's own
  // namespace first, then from tenants over their recorded budget, then
  // the shared pool, and only as a last resort from within-budget
  // bystanders (keeps the capacity invariant when budgets oversubscribe
  // the shard).
  void EvictDownTo(double target_tokens, double now,
                   std::string_view offender);
  // Evicts within one tenant's namespace until its usage fits
  // `budget_tokens`; charged to that tenant's eviction count.
  void EvictTenantDownTo(const std::string& tenant, double budget_tokens,
                         double now);
  void RemoveInternal(SeId id, bool expired);
  // True when `tenant` may see (match / dedup onto) `se`.
  static bool VisibleTo(const SemanticElement& se,
                        std::string_view tenant) noexcept {
    return se.tenant.empty() || se.tenant == tenant;
  }

  Sine sine_;
  std::unique_ptr<EvictionPolicy> eviction_;
  SemanticCacheOptions options_;
  std::unordered_map<SeId, SemanticElement> store_;
  // Keyed by NamespacedKey(tenant, key): the same semantic key may exist
  // once per namespace.
  std::unordered_map<std::string, SeId> key_to_id_;
  // Value-identity dedup index: hash of value -> ids holding that hash
  // (hash collisions resolved by comparing the actual values).
  std::unordered_multimap<std::size_t, SeId> value_hash_to_id_;
  double usage_tokens_ = 0.0;
  SeId next_id_ = 1;
  CacheCounters counters_;
  CountMinSketch admission_sketch_;
  // Per-namespace resident tokens + evictions suffered.
  std::unordered_map<std::string, TenantUsage> tenant_usage_;
  // Last budget seen per tenant (from InsertRequest::budget_tokens); lets
  // EvictDownTo identify over-budget tenants without a policy dependency.
  std::unordered_map<std::string, double> tenant_budget_;
  // Promotion evidence: value hash -> distinct shareable-inserting
  // tenants seen so far (bounded by promote_tracker_capacity).
  std::unordered_map<std::size_t, std::vector<std::string>> promote_seen_;
};

}  // namespace cortex
