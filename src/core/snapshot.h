// Cache snapshots: serialize a SemanticCache's full contents — keys,
// values, embeddings, and the per-SE metadata every policy depends on — so
// a deployment can restart warm instead of re-paying a cold cache's worth
// of remote fetches.  TTLs are preserved as absolute times; entries whose
// lifetime has passed by load time are dropped.
//
// Format: a little self-describing binary stream (magic + version, then
// length-prefixed records).  Written and read with native endianness — a
// node restarts on the machine class it ran on; cross-architecture
// portability is out of scope.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "core/semantic_cache.h"

namespace cortex {

inline constexpr std::uint32_t kSnapshotMagic = 0x43524358;  // "CRCX"
// Version history:
//   1 — original per-SE record (key..expiration_time).
//   2 — appends the tenancy fields (tenant string, shareable flag).
// Readers accept both: a v1 record loads with tenant="" (the shared
// pool) and shareable=true, so pre-tenant snapshots restore cleanly on
// tenant-aware nodes — including the cluster migration path, where a v1
// node's SNAPSHOT blob is RESTOREd onto a v2 node.
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::uint32_t kSnapshotMinReadVersion = 1;

struct SnapshotStats {
  std::size_t entries_written = 0;
  std::size_t entries_restored = 0;
  std::size_t entries_expired = 0;   // dropped at load time (TTL passed)
  std::size_t entries_rejected = 0;  // did not fit the target's capacity
};

// Writes every resident SE.  Returns stats; throws std::runtime_error on a
// stream failure.
SnapshotStats SaveCacheSnapshot(const SemanticCache& cache, std::ostream& out);

// Restores a snapshot into `cache` (which may already hold entries; keys
// and values dedup as usual).  `now` is the load-time clock used for TTL
// filtering.  Throws std::runtime_error on malformed input.
SnapshotStats LoadCacheSnapshot(SemanticCache& cache, std::istream& in,
                                double now);

// File-path conveniences.
SnapshotStats SaveCacheSnapshotFile(const SemanticCache& cache,
                                    const std::string& path);
SnapshotStats LoadCacheSnapshotFile(SemanticCache& cache,
                                    const std::string& path, double now);

// ---------------------------------------------------------------------------
// Element-wise primitives underneath the snapshot format, exposed so higher
// tiers can compose streams whose shard layout differs between writer and
// reader: the concurrent engine writes one bounded stream per shard, and
// cluster migration re-routes every restored element by key on the target
// node, whatever its shard count.

// `version` lets tests and mixed-version migration paths emit the older
// layout deliberately; production writers always use kSnapshotVersion.
void WriteSnapshotHeader(std::ostream& out, std::uint64_t entry_count,
                         std::uint32_t version = kSnapshotVersion);
void WriteSnapshotElement(std::ostream& out, const SemanticElement& se,
                          std::uint32_t version = kSnapshotVersion);

// Reads exactly one snapshot stream (header + its declared entries),
// invoking `fn` per decoded element; bytes past the declared count are left
// unread, so streams concatenate.  Returns entries read; throws
// std::runtime_error on malformed input.
std::uint64_t ForEachSnapshotElement(
    std::istream& in, const std::function<void(SemanticElement)>& fn);

}  // namespace cortex
