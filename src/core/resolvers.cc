#include "core/resolvers.h"

#include <algorithm>

#include "llm/tags.h"

namespace cortex {

namespace {

void AccumulateFetch(const FetchResult& fetch, ResolveOutcome& outcome) {
  outcome.api_calls += fetch.attempts;
  outcome.retries += fetch.retries;
  outcome.cost_dollars += fetch.cost_dollars;
}

}  // namespace

// ---------------------------------------------------------------------------
// Vanilla

void VanillaResolver::Resolve(Simulation& sim, const ToolStep& step,
                              std::uint64_t /*task_id*/,
                              ResolveCallback done) {
  const double now = sim.now();
  FetchResult fetch = env_.service->Fetch(
      now, step.query, step.expected_info,
      env_.oracle->FetchCostScale(step.query),
      env_.oracle->FetchLatencyScale(step.query));
  ResolveOutcome outcome;
  outcome.info = fetch.info;
  outcome.from_cache = false;
  outcome.info_correct = fetch.success;  // a fresh fetch is always valid
  outcome.tool_seconds = fetch.Latency();
  AccumulateFetch(fetch, outcome);
  sim.ScheduleAt(fetch.completion_time,
                 [done = std::move(done), outcome = std::move(outcome)] {
                   done(std::move(outcome));
                 });
}

// ---------------------------------------------------------------------------
// Exact-match cache

ExactCacheResolver::ExactCacheResolver(ResolverEnvironment env,
                                       ExactCacheOptions options)
    : env_(env), cache_(options) {}

void ExactCacheResolver::Resolve(Simulation& sim, const ToolStep& step,
                                 std::uint64_t /*task_id*/,
                                 ResolveCallback done) {
  const double now = sim.now();
  const double after_lookup = now + lookup_seconds_;
  if (auto value = cache_.Lookup(step.query, now)) {
    ResolveOutcome outcome;
    outcome.info = std::move(*value);
    outcome.from_cache = true;
    // An exact key match always returns the knowledge originally fetched
    // for this very string; correctness still depends on freshness, which
    // TTL handles.
    outcome.info_correct =
        env_.oracle->InfoCorrect(step.query, outcome.info);
    outcome.cache_check_seconds = lookup_seconds_;
    sim.ScheduleAt(after_lookup,
                   [done = std::move(done), outcome = std::move(outcome)] {
                     done(std::move(outcome));
                   });
    return;
  }
  FetchResult fetch = env_.service->Fetch(
      after_lookup, step.query, step.expected_info,
      env_.oracle->FetchCostScale(step.query),
      env_.oracle->FetchLatencyScale(step.query));
  cache_.Insert(step.query, fetch.info, fetch.completion_time);
  ResolveOutcome outcome;
  outcome.info = fetch.info;
  outcome.from_cache = false;
  outcome.info_correct = fetch.success;
  outcome.cache_check_seconds = lookup_seconds_;
  outcome.tool_seconds = fetch.Latency();
  AccumulateFetch(fetch, outcome);
  sim.ScheduleAt(fetch.completion_time,
                 [done = std::move(done), outcome = std::move(outcome)] {
                   done(std::move(outcome));
                 });
}

// ---------------------------------------------------------------------------
// Cortex

CortexResolver::CortexResolver(ResolverEnvironment env, CortexEngine* engine,
                               CortexResolverOptions options)
    : env_(env), engine_(engine), options_(options), rng_(options.seed) {}

void CortexResolver::Resolve(Simulation& sim, const ToolStep& step,
                             std::uint64_t task_id, ResolveCallback done) {
  const double t0 = sim.now();

  // Stage 0: embed the query on the GPU side model.
  const double t_embed =
      env_.gpu->RunEmbedding(t0, ApproxTokenCount(step.query));
  // Stage 1: CPU ANN search.
  const double t_ann = t_embed + engine_->options().ann_search_seconds;

  // Run the engine's logical lookup now (results determine stage-2 load).
  CortexEngine::LookupOutcome lookup = engine_->Lookup(step.query, t0, task_id);

  // Stage 2: one judger validation per stage-1 survivor; calls batch on the
  // judger partition, so the stage completes when the last one does.
  double t_check = t_ann;
  for (const auto& judged : lookup.cache.sine.judged) {
    std::size_t prompt = ApproxTokenCount(step.query) + 32;
    if (const SemanticElement* se = engine_->cache().Get(judged.id)) {
      // The judger prompt carries a bounded snippet of the cached result,
      // not the full payload — validating "does this answer the query"
      // does not require the whole document.
      prompt += ApproxTokenCount(se->key) +
                std::min<std::size_t>(ApproxTokenCount(se->value), 128);
    }
    t_check = std::max(t_check, env_.gpu->RunJudgerCall(t_ann, prompt));
  }

  ResolveOutcome outcome;
  outcome.cache_check_seconds = t_check - t0;
  MaybeRecalibrate(sim, outcome);
  IssuePrefetches(sim, lookup.prefetches, outcome);

  if (lookup.cache.hit) {
    outcome.info = lookup.cache.hit->value;
    outcome.from_cache = true;
    outcome.info_correct =
        env_.oracle->InfoCorrect(step.query, outcome.info);
    sim.ScheduleAt(t_check,
                   [done = std::move(done), outcome = std::move(outcome)] {
                     done(std::move(outcome));
                   });
    return;
  }

  // Miss.  Single-flight: if an equivalent query is already fetching, wait
  // for that fetch instead of issuing another.
  const std::string query_key(step.query);
  if (options_.coalesce_inflight) {
    if (InflightFetch* target = FindCoalesceTarget(
            step.query, lookup.cache.query_embedding, t_check)) {
      ++coalesced_;
      outcome.from_cache = false;
      target->waiters.push_back(
          {std::move(done), std::move(outcome), t_check, query_key});
      return;
    }
    inflight_.emplace(query_key,
                      InflightFetch{lookup.cache.query_embedding, {}});
  }

  // Fall back to the remote service, then admit the new knowledge.
  FetchResult fetch = env_.service->Fetch(
      t_check, step.query, step.expected_info,
      env_.oracle->FetchCostScale(step.query),
      env_.oracle->FetchLatencyScale(step.query));
  if (fetch.success) {
    engine_->InsertFetched(step.query, fetch.info,
                           std::move(lookup.cache.query_embedding),
                           fetch.Latency(), fetch.cost_dollars,
                           fetch.completion_time);
    // Staticity scoring consumes judger capacity in the background (it is
    // deferrable work — the priority scheduler keeps it off the agent path).
    env_.gpu->RunJudgerCall(fetch.completion_time,
                            ApproxTokenCount(fetch.info) + 32);
  }
  outcome.info = fetch.info;
  outcome.from_cache = false;
  outcome.info_correct = fetch.success;
  outcome.tool_seconds = fetch.Latency();
  AccumulateFetch(fetch, outcome);
  sim.ScheduleAt(
      fetch.completion_time,
      [this, &sim, query_key, info = fetch.info, success = fetch.success,
       done = std::move(done), outcome = std::move(outcome)]() mutable {
        done(std::move(outcome));
        // Release everyone who piled onto this fetch.
        const auto it = inflight_.find(query_key);
        if (it == inflight_.end()) return;
        std::vector<Waiter> waiters = std::move(it->second.waiters);
        inflight_.erase(it);
        for (auto& waiter : waiters) {
          waiter.outcome.info = info;
          // A semantically-coalesced waiter may have joined the wrong fetch
          // (judger false positive): correctness is judged against the
          // waiter's own query.
          waiter.outcome.info_correct =
              success && env_.oracle->InfoCorrect(waiter.query, info);
          waiter.outcome.tool_seconds = sim.now() - waiter.enqueued_at;
          waiter.done(std::move(waiter.outcome));
        }
      });
}

CortexResolver::InflightFetch* CortexResolver::FindCoalesceTarget(
    std::string_view query, const Vector& embedding, double now) {
  // Exact-string match first: always safe, no validation needed.
  if (const auto it = inflight_.find(std::string(query));
      it != inflight_.end()) {
    return &it->second;
  }
  if (!options_.semantic_coalescing ||
      !engine_->cache().sine().options().use_judger) {
    return nullptr;
  }
  // Semantic match against the (small) in-flight set, held to the same
  // two-stage standard as a cache hit: embedding similarity passes
  // tau_sim, then the judger validates the pair.  The judger call runs on
  // the GPU like any other validation.
  const auto& sine_opts = engine_->cache().sine().options();
  const JudgerModel* judger = engine_->judger();
  InflightFetch* best = nullptr;
  double best_sim = sine_opts.tau_sim;
  for (auto& [key, fetch] : inflight_) {
    const double sim = CosineSimilarity(embedding, fetch.embedding);
    if (sim < best_sim) continue;
    JudgeRequest req;
    req.query = query;
    req.cached_query = key;
    req.embedding_similarity = sim;
    env_.gpu->RunJudgerCall(now, ApproxTokenCount(query) +
                                     ApproxTokenCount(key) + 32);
    if (judger->Judge(req) >= sine_opts.tau_lsm) {
      best = &fetch;
      best_sim = sim;
    }
  }
  return best;
}

void CortexResolver::IssuePrefetches(
    Simulation& sim, const std::vector<Prediction>& predictions,
    ResolveOutcome& outcome) {
  if (!predictions.empty() &&
      env_.service->AvailableQuota(sim.now()) < options_.prefetch_min_quota) {
    ++prefetch_skipped_quota_;
    return;  // quota is scarce: foreground misses need it more
  }
  for (const auto& p : predictions) {
    const std::string ground = env_.oracle->ExpectedInfo(p.query);
    if (ground.empty()) continue;  // nothing retrievable for this text
    FetchResult fetch = env_.service->Fetch(
        sim.now(), p.query, ground, env_.oracle->FetchCostScale(p.query),
        env_.oracle->FetchLatencyScale(p.query));
    ++prefetch_issued_;
    if (options_.count_background_calls) AccumulateFetch(fetch, outcome);
    if (!fetch.success) continue;
    // The speculative SE lands asynchronously when the fetch returns.
    sim.ScheduleAt(fetch.completion_time,
                   [this, &sim, query = p.query, info = fetch.info,
                    latency = fetch.Latency(), cost = fetch.cost_dollars] {
                     engine_->InsertPrefetched(query, info, latency, cost,
                                               sim.now());
                   });
  }
}

void CortexResolver::MaybeRecalibrate(Simulation& sim,
                                      ResolveOutcome& outcome) {
  if (!engine_->options().recalibration_enabled) return;
  if (sim.now() < next_recalibration_) return;
  next_recalibration_ =
      sim.now() + engine_->options().recalibration_interval_sec;
  ++recalibration_rounds_;

  auto fetch_gt = [&](std::string_view query) -> std::string {
    FetchResult fetch = env_.service->Fetch(
        sim.now(), query, env_.oracle->ExpectedInfo(query),
        env_.oracle->FetchCostScale(query),
        env_.oracle->FetchLatencyScale(query));
    if (options_.count_background_calls) AccumulateFetch(fetch, outcome);
    return fetch.success ? fetch.info : std::string{};
  };
  engine_->Recalibrate(fetch_gt, rng_);

  // PredictScores over the validation set consumes judger compute in the
  // background — this is the bounded ~2% overhead §6.7 measures.
  // The scheduler treats validation scoring as fully deferrable: it fills
  // idle judger slots rather than queueing ahead of live lookups, so only
  // a small slice contends (paper: the priority scheduler admits judger
  // batches only when the agent queue leaves room).
  const std::size_t val_calls =
      std::min<std::size_t>(engine_->recalibrator().validation_size(), 12);
  for (std::size_t i = 0; i < val_calls; ++i) {
    env_.gpu->RunJudgerCall(sim.now(), 96);
  }
}

}  // namespace cortex
