#include "core/exact_cache.h"

#include <limits>

#include "llm/tags.h"

namespace cortex {

ExactCache::ExactCache(ExactCacheOptions options) : options_(options) {}

std::optional<std::string> ExactCache::Lookup(std::string_view key,
                                              double now) {
  ++lookups_;
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return std::nullopt;
  if (it->second.expiration_time <= now) {
    Remove(it->first);
    return std::nullopt;
  }
  // Refresh recency.
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  ++hits_;
  return it->second.value;
}

void ExactCache::Insert(std::string key, std::string value, double now) {
  const double size_tokens = static_cast<double>(ApproxTokenCount(value));
  if (size_tokens > options_.capacity_tokens) return;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    Remove(it->first);
  }
  while (usage_tokens_ + size_tokens > options_.capacity_tokens &&
         !entries_.empty()) {
    EvictLru();
  }
  lru_.push_front(key);
  Entry entry;
  entry.value = std::move(value);
  entry.size_tokens = size_tokens;
  entry.expiration_time =
      options_.ttl_enabled ? now + options_.ttl_sec
                           : std::numeric_limits<double>::infinity();
  entry.lru_position = lru_.begin();
  usage_tokens_ += size_tokens;
  entries_.emplace(std::move(key), std::move(entry));
}

bool ExactCache::Contains(std::string_view key) const {
  return entries_.contains(std::string(key));
}

void ExactCache::Remove(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  usage_tokens_ -= it->second.size_tokens;
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
}

void ExactCache::EvictLru() {
  if (lru_.empty()) return;
  Remove(lru_.back());
}

}  // namespace cortex
