// ToolResolver implementations — the serving configurations compared in
// the paper's evaluation (§6.1 "Baseline systems"):
//
//   VanillaResolver     Agent_vanilla: every tool call goes to the remote
//                       data service.
//   ExactCacheResolver  Agent_exact: a traditional exact-match KV cache in
//                       front of the service.
//   CortexResolver      Agent_Asteria (here: Agent_Cortex): the full
//                       engine — two-stage semantic retrieval, LCFU + TTL,
//                       Markov prefetching, periodic recalibration.  With
//                       the judger disabled in the engine options it
//                       doubles as the Agent_ANN ablation.
//
// Resolvers translate engine operations into virtual-clock latency: the
// embedder and judger run on the GPU co-location simulator, ANN search
// costs a CPU constant, and misses pay the remote service's WAN latency,
// rate limiting, and retries.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/exact_cache.h"
#include "gpu/colocation.h"
#include "net/remote_service.h"
#include "sim/serving.h"
#include "workload/oracle.h"

namespace cortex {

// Shared wiring for all resolvers.  Borrowed pointers must outlive the
// resolver.
struct ResolverEnvironment {
  ColocationSimulator* gpu = nullptr;
  RemoteDataService* service = nullptr;
  const GroundTruthOracle* oracle = nullptr;
};

class VanillaResolver final : public ToolResolver {
 public:
  explicit VanillaResolver(ResolverEnvironment env) : env_(env) {}

  void Resolve(Simulation& sim, const ToolStep& step, std::uint64_t task_id,
               ResolveCallback done) override;
  std::string name() const override { return "vanilla"; }

 private:
  ResolverEnvironment env_;
};

class ExactCacheResolver final : public ToolResolver {
 public:
  ExactCacheResolver(ResolverEnvironment env, ExactCacheOptions options);

  void Resolve(Simulation& sim, const ToolStep& step, std::uint64_t task_id,
               ResolveCallback done) override;
  std::string name() const override { return "exact"; }

  const ExactCache& cache() const noexcept { return cache_; }

 private:
  ResolverEnvironment env_;
  ExactCache cache_;
  // Local KV lookup cost (an in-memory store, microseconds-to-millisecond).
  double lookup_seconds_ = 0.001;
};

struct CortexResolverOptions {
  // Attribute background traffic (prefetch fetches, recalibration GT
  // fetches) to the triggering request's outcome counters.
  bool count_background_calls = true;
  // Single-flight: concurrent misses share an in-flight remote fetch
  // instead of stampeding the service.  Exact-string matches always
  // coalesce; with semantic coalescing enabled, a miss also joins a fetch
  // for a *semantically equivalent* in-flight query (validated by the same
  // ANN-similarity + judger pipeline as cache hits).  Matters under bursty
  // load, where a hot topic's paraphrases arrive faster than one fetch
  // round trip.
  bool coalesce_inflight = true;
  bool semantic_coalescing = true;
  // Prefetches are optional traffic: skip them when the remote service's
  // quota bucket is nearly drained, so speculation never starves foreground
  // misses of rate-limit tokens.
  double prefetch_min_quota = 3.0;
  std::uint64_t seed = 77;
};

class CortexResolver final : public ToolResolver {
 public:
  CortexResolver(ResolverEnvironment env, CortexEngine* engine,
                 CortexResolverOptions options = {});

  void Resolve(Simulation& sim, const ToolStep& step, std::uint64_t task_id,
               ResolveCallback done) override;
  std::string name() const override {
    return engine_->cache().sine().options().use_judger ? "cortex"
                                                        : "ann-only";
  }

  CortexEngine& engine() noexcept { return *engine_; }
  std::uint64_t prefetch_issued() const noexcept { return prefetch_issued_; }
  std::uint64_t recalibration_rounds() const noexcept {
    return recalibration_rounds_;
  }
  std::uint64_t coalesced_requests() const noexcept { return coalesced_; }
  std::uint64_t prefetches_skipped_for_quota() const noexcept {
    return prefetch_skipped_quota_;
  }

 private:
  struct Waiter {
    ResolveCallback done;
    ResolveOutcome outcome;  // partially filled (cache-check accounting)
    double enqueued_at = 0.0;
    std::string query;  // the waiter's own query (correctness is checked
                        // against it, not the leader's)
  };
  struct InflightFetch {
    Vector embedding;  // of the fetching query, for semantic coalescing
    std::vector<Waiter> waiters;
  };

  // Finds an in-flight fetch this query may legitimately wait on: the
  // exact string, or (if enabled) a semantically equivalent query that
  // passes the judger.  Returns nullptr if none.
  InflightFetch* FindCoalesceTarget(std::string_view query,
                                    const Vector& embedding, double now);

  void MaybeRecalibrate(Simulation& sim, ResolveOutcome& outcome);
  void IssuePrefetches(Simulation& sim,
                       const std::vector<Prediction>& predictions,
                       ResolveOutcome& outcome);

  ResolverEnvironment env_;
  CortexEngine* engine_;
  CortexResolverOptions options_;
  Rng rng_;
  double next_recalibration_ = 0.0;
  std::uint64_t prefetch_issued_ = 0;
  std::uint64_t recalibration_rounds_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t prefetch_skipped_quota_ = 0;
  // Single-flight registry: query string -> in-flight fetch state.
  std::unordered_map<std::string, InflightFetch> inflight_;
};

}  // namespace cortex
