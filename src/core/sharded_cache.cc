#include "core/sharded_cache.h"

#include "core/engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace cortex {

namespace {

std::uint64_t HashToken(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

std::string PlacementAnchor(const HashedEmbedder& embedder,
                            const Tokenizer& tokenizer,
                            std::string_view query) {
  const auto tokens = tokenizer.Tokenize(query);
  if (tokens.empty()) {
    return std::string(query);
  }
  // Anchor on the most discriminative token: max IDF weight, ties broken
  // by lexicographic order so the choice is deterministic across
  // paraphrases.
  const std::string* anchor = &tokens.front();
  double best_weight = embedder.IdfWeight(*anchor);
  for (const auto& token : tokens) {
    const double weight = embedder.IdfWeight(token);
    if (weight > best_weight || (weight == best_weight && token < *anchor)) {
      best_weight = weight;
      anchor = &token;
    }
  }
  return *anchor;
}

std::size_t RouteToShard(const HashedEmbedder& embedder,
                         const Tokenizer& tokenizer, std::string_view query,
                         std::size_t num_shards) {
  return HashToken(PlacementAnchor(embedder, tokenizer, query)) % num_shards;
}

ShardedSemanticCache::ShardedSemanticCache(const HashedEmbedder* embedder,
                                           const JudgerModel* judger,
                                           ShardedCacheOptions options)
    : embedder_(embedder) {
  CHECK(embedder != nullptr);
  CHECK_GT(options.num_shards, 0u);
  SemanticCacheOptions per_shard = options.cache;
  per_shard.capacity_tokens =
      options.cache.capacity_tokens / static_cast<double>(options.num_shards);
  shards_.reserve(options.num_shards);
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<SemanticCache>(
        embedder, MakeIndex(IndexType::kFlat, embedder->dimension()), judger,
        std::make_unique<LcfuPolicy>(), per_shard));
  }
}

std::size_t ShardedSemanticCache::ShardFor(std::string_view query) const {
  return RouteToShard(*embedder_, tokenizer_, query, shards_.size());
}

SemanticCache::LookupResult ShardedSemanticCache::Lookup(
    std::string_view query, double now) {
  return shards_[ShardFor(query)]->Lookup(query, now);
}

std::optional<SeId> ShardedSemanticCache::Insert(InsertRequest request,
                                                 double now) {
  const std::size_t shard = ShardFor(request.key);
  return shards_[shard]->Insert(std::move(request), now);
}

bool ShardedSemanticCache::ContainsKey(std::string_view key) const {
  return shards_[ShardFor(key)]->ContainsKey(key);
}

std::size_t ShardedSemanticCache::RemoveExpired(double now) {
  std::size_t removed = 0;
  for (auto& shard : shards_) removed += shard->RemoveExpired(now);
  return removed;
}

CacheCounters ShardedSemanticCache::TotalCounters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    const auto& c = shard->counters();
    total.lookups += c.lookups;
    total.hits += c.hits;
    total.insertions += c.insertions;
    total.evictions += c.evictions;
    total.expirations += c.expirations;
    total.rejected_too_large += c.rejected_too_large;
    total.dedup_refreshes += c.dedup_refreshes;
    total.admission_rejects += c.admission_rejects;
  }
  return total;
}

std::size_t ShardedSemanticCache::TotalSize() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

double ShardedSemanticCache::TotalUsageTokens() const {
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->usage_tokens();
  return total;
}

}  // namespace cortex
