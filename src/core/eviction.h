// Eviction policies (paper §4.3, Algorithm 2).
//
// LCFU — Least Cost-efficient and Frequently Used — scores each SE by the
// savings it buys per byte: log-damped frequency x retrieval cost x
// retrieval latency x staticity, normalised by size.  Expired items score
// zero.  LRU and LFU are provided as the Table-6 baselines.
#pragma once

#include <string>

#include "core/semantic_element.h"

namespace cortex {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  // Priority of retaining `se` at time `now`; the lowest-scoring item is
  // evicted first.  Zero means "evict immediately" (expired/empty).
  virtual double Score(const SemanticElement& se, double now) const = 0;

  virtual std::string name() const = 0;
};

// Algorithm 2's CalScore, including the paper's normalisation notes: the
// +1 shifts keep each log factor positive (cost-per-request is < $1, so a
// bare log would go negative), and the product is divided by size so the
// cache keeps items that save the most time and money per byte.
class LcfuPolicy final : public EvictionPolicy {
 public:
  double Score(const SemanticElement& se, double now) const override;
  std::string name() const override { return "lcfu"; }
};

class LruPolicy final : public EvictionPolicy {
 public:
  double Score(const SemanticElement& se, double now) const override;
  std::string name() const override { return "lru"; }
};

class LfuPolicy final : public EvictionPolicy {
 public:
  double Score(const SemanticElement& se, double now) const override;
  std::string name() const override { return "lfu"; }
};

}  // namespace cortex
