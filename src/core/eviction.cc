#include "core/eviction.h"

#include <cmath>

namespace cortex {

double LcfuPolicy::Score(const SemanticElement& se, double now) const {
  if (se.size_tokens <= 0.0 || se.TtlRemaining(now) <= 0.0) return 0.0;
  const double score =
      std::log(static_cast<double>(se.frequency) + 1.0) *
      std::log(se.retrieval_cost_dollars * 1e3 + 1.0) *
      std::log(se.retrieval_latency_sec + 1.0) *
      std::log(se.staticity + 1.0);
  return score / se.size_tokens;
}

double LruPolicy::Score(const SemanticElement& se, double now) const {
  if (se.TtlRemaining(now) <= 0.0) return 0.0;
  // More recently used => higher retention priority.  Shift by 1 so that a
  // just-inserted item (last_access == now == 0) still outranks expired.
  return se.last_access + 1.0;
}

double LfuPolicy::Score(const SemanticElement& se, double now) const {
  if (se.TtlRemaining(now) <= 0.0) return 0.0;
  return static_cast<double>(se.frequency) + 1.0;
}

}  // namespace cortex
