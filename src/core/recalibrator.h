// Recalibrator: periodic offline threshold recalibration (paper §4.2,
// Algorithm 1).
//
// The judger's acceptance threshold tau_lsm is brittle under workload
// drift, so Cortex keeps a log of recent judgments, periodically samples a
// handful, fetches ground truth for them (a real remote call — the paper
// samples ~5 queries/minute), labels the cached answers correct/incorrect,
// and re-derives the smallest threshold whose precision on the accumulated
// validation set meets the target.  Smallest-meeting-target maximises hit
// rate subject to the precision constraint.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace cortex {

struct RecalibratorOptions {
  double target_precision = 0.97;   // Algorithm 1's P_target
  std::size_t samples_per_round = 5;
  std::size_t max_log = 2000;            // L_recent capacity
  std::size_t max_validation_set = 400;  // D_val capacity (ring)
  double min_tau = 0.45;
  double max_tau = 0.98;
};

// One judged (query, cached answer) pair from the live lookup path.
struct JudgedSample {
  std::string query;
  std::string cached_key;
  std::string cached_value;
  double judger_score = 0.0;
};

// An annotated sample: judger score plus ground-truth label.
struct LabeledSample {
  double score = 0.0;
  bool correct = false;
};

struct RecalibrationRound {
  std::optional<double> new_tau;  // unset when D_val is still too small
  std::size_t annotated = 0;      // fresh labels this round
  std::size_t gt_fetches = 0;     // remote ground-truth calls issued
};

class Recalibrator {
 public:
  explicit Recalibrator(RecalibratorOptions options = {});

  // Logs a judgment from the live path (L_recent).
  void LogJudgment(JudgedSample sample);

  // Runs Algorithm 1: samples the recent log, annotates via `fetch_gt`
  // (query -> ground-truth result), extends D_val, and recomputes the
  // threshold from the precision curve.
  RecalibrationRound RunRound(
      const std::function<std::string(std::string_view)>& fetch_gt, Rng& rng);

  // FindThreshold(CalcPrecisionCurve(scores), P_target): smallest score
  // cutoff whose precision over samples >= cutoff meets `target`; nullopt
  // if no cutoff does (callers keep the previous threshold, or clamp).
  static std::optional<double> ThresholdForPrecision(
      std::vector<LabeledSample> samples, double target);

  std::size_t log_size() const noexcept { return log_.size(); }
  std::size_t validation_size() const noexcept { return validation_.size(); }
  const RecalibratorOptions& options() const noexcept { return options_; }

  // The accumulated annotated set (paper §4.2: "The annotated set can also
  // fine-tune the LSM").  Consumers use it as judger training data.
  std::vector<LabeledSample> Annotations() const {
    return {validation_.begin(), validation_.end()};
  }

 private:
  RecalibratorOptions options_;
  std::deque<JudgedSample> log_;
  std::deque<LabeledSample> validation_;
};

}  // namespace cortex
