// ExactCache: the Agent_exact baseline — a traditional storage cache
// (Redis/Memcached-style) keyed on the exact query string, with LRU
// eviction and optional TTL.  It shares the token-capacity accounting of
// SemanticCache so "cache ratio" sweeps compare like for like, but it has
// no notion of semantic equivalence: any rephrasing is a miss (§2.4).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cortex {

struct ExactCacheOptions {
  double capacity_tokens = 50000.0;
  bool ttl_enabled = true;
  double ttl_sec = 3600.0;
};

class ExactCache {
 public:
  explicit ExactCache(ExactCacheOptions options = {});

  // Returns the cached value on an exact key match (and refreshes LRU
  // position), nullopt otherwise.
  std::optional<std::string> Lookup(std::string_view key, double now);

  void Insert(std::string key, std::string value, double now);
  bool Contains(std::string_view key) const;

  std::size_t size() const noexcept { return entries_.size(); }
  double usage_tokens() const noexcept { return usage_tokens_; }
  double capacity_tokens() const noexcept { return options_.capacity_tokens; }

  std::uint64_t lookups() const noexcept { return lookups_; }
  std::uint64_t hits() const noexcept { return hits_; }
  double HitRate() const noexcept {
    return lookups_ ? static_cast<double>(hits_) /
                          static_cast<double>(lookups_)
                    : 0.0;
  }

 private:
  struct Entry {
    std::string value;
    double size_tokens = 0.0;
    double expiration_time = 0.0;
    std::list<std::string>::iterator lru_position;
  };

  void Remove(const std::string& key);
  void EvictLru();

  ExactCacheOptions options_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  double usage_tokens_ = 0.0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace cortex
