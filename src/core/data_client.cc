#include "core/data_client.h"

#include "util/check.h"

namespace cortex {

DataClient::DataClient(CortexEngine* engine, RemoteFetcher fetcher)
    : engine_(engine), fetcher_(std::move(fetcher)) {
  CHECK(engine_ != nullptr);
  CHECK(fetcher_ != nullptr);
}

DataClient::TurnResult DataClient::InterceptTurn(std::string_view agent_output,
                                                 double now,
                                                 std::uint64_t session_id) {
  ++turns_seen_;
  pending_prefetches_.clear();

  TurnResult result;
  const auto segments = ParseTagged(agent_output);
  const auto tool = FirstToolCall(segments);
  if (!tool) {
    return result;  // nothing to intercept (e.g. the final <answer> turn)
  }
  result.tool_call = true;
  result.query = tool->content;
  ++tool_calls_seen_;

  auto lookup = engine_->Lookup(result.query, now, session_id);
  pending_prefetches_ = std::move(lookup.prefetches);

  if (lookup.cache.hit) {
    ++served_from_cache_;
    result.from_cache = true;
    result.observation = WrapTag(TagKind::kInfo, lookup.cache.hit->value);
    return result;
  }

  const FetchResultView fetched = fetcher_(result.query, now);
  if (fetched.info.empty()) {
    result.fetch_failed = true;
    result.observation = WrapTag(TagKind::kInfo, "");
    return result;
  }
  engine_->InsertFetched(result.query, fetched.info,
                         std::move(lookup.cache.query_embedding),
                         fetched.latency_sec, fetched.cost_dollars, now);
  result.observation = WrapTag(TagKind::kInfo, fetched.info);
  return result;
}

std::size_t DataClient::RunPendingPrefetches(double now) {
  std::size_t fetched_count = 0;
  for (const auto& prediction : pending_prefetches_) {
    if (engine_->cache().ContainsKey(prediction.query)) continue;
    const FetchResultView fetched = fetcher_(prediction.query, now);
    if (fetched.info.empty()) continue;
    engine_->InsertPrefetched(prediction.query, fetched.info,
                              fetched.latency_sec, fetched.cost_dollars, now);
    ++fetched_count;
  }
  pending_prefetches_.clear();
  return fetched_count;
}

}  // namespace cortex
