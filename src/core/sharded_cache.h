// ShardedSemanticCache: the multi-tenant deployment of Fig. 4, where
// several agent applications share one regional Cortex tier.
//
// The cache is partitioned into N independent shards (each a full
// SemanticCache with its own ANN index), so lookups scale with shards and a
// shard-sized index stays small.  Routing must send every paraphrase of a
// piece of knowledge to the same shard even though the strings differ —
// exact-key hashing would scatter them.  Cortex routes on the query's most
// *discriminative* token (highest IDF under the shared embedder): content
// words survive paraphrasing, so "everest height please" and "what is the
// height of everest" land together.
#pragma once

#include <memory>
#include <vector>

#include "core/semantic_cache.h"
#include "embedding/hashed_embedder.h"

namespace cortex {

// The placement anchor: the query's most discriminative token (max IDF
// under the shared embedder, ties broken lexicographically), or the whole
// query when tokenization yields nothing.  Content words survive
// paraphrasing, so every phrasing of a piece of knowledge maps to the same
// anchor.  Shard routing hashes it modulo the shard count, and the cluster
// tier's consistent-hash ring (cluster/hash_ring) places it on the ring —
// both keyed semantically, so hot semantic neighborhoods stay co-resident.
// Deterministic and read-only; safe to call concurrently as long as the
// embedder's IDF table is not being refit.
std::string PlacementAnchor(const HashedEmbedder& embedder,
                            const Tokenizer& tokenizer,
                            std::string_view query);

// The routing primitive shared by ShardedSemanticCache and the concurrent
// serving tier (serve/concurrent_engine): shard index for a query under
// IDF-anchor routing.  Deterministic and read-only — safe to call
// concurrently as long as the embedder's IDF table is not being refit.
std::size_t RouteToShard(const HashedEmbedder& embedder,
                         const Tokenizer& tokenizer, std::string_view query,
                         std::size_t num_shards);

struct ShardedCacheOptions {
  std::size_t num_shards = 4;
  // Per-shard options; capacity_tokens here is the TOTAL budget, divided
  // evenly across shards.
  SemanticCacheOptions cache;
};

class ShardedSemanticCache {
 public:
  // The embedder must be the IDF-fitted HashedEmbedder shared by the
  // deployment (routing uses its token weights).  All borrowed pointers
  // must outlive the cache.
  ShardedSemanticCache(const HashedEmbedder* embedder,
                       const JudgerModel* judger,
                       ShardedCacheOptions options = {});

  // Which shard serves this query.  Deterministic; paraphrase-stable as
  // long as the paraphrases share their most discriminative token.
  std::size_t ShardFor(std::string_view query) const;

  SemanticCache::LookupResult Lookup(std::string_view query, double now);
  std::optional<SeId> Insert(InsertRequest request, double now);
  bool ContainsKey(std::string_view key) const;
  std::size_t RemoveExpired(double now);

  std::size_t num_shards() const noexcept { return shards_.size(); }
  SemanticCache& shard(std::size_t i) { return *shards_.at(i); }
  const SemanticCache& shard(std::size_t i) const { return *shards_.at(i); }

  // Aggregated counters across shards.
  CacheCounters TotalCounters() const;
  std::size_t TotalSize() const;
  double TotalUsageTokens() const;

 private:
  const HashedEmbedder* embedder_;
  Tokenizer tokenizer_;
  std::vector<std::unique_ptr<SemanticCache>> shards_;
};

}  // namespace cortex
