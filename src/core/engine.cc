#include "core/engine.h"

#include <algorithm>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/ivf_index.h"
#include "ann/pq.h"

namespace cortex {

std::unique_ptr<VectorIndex> MakeIndex(IndexType type, std::size_t dimension) {
  switch (type) {
    case IndexType::kFlat:
      return std::make_unique<FlatIndex>(dimension);
    case IndexType::kIvf:
      return std::make_unique<IvfIndex>(dimension);
    case IndexType::kHnsw:
      return std::make_unique<HnswIndex>(dimension);
    case IndexType::kPq:
      return std::make_unique<PqIndex>(dimension);
  }
  return std::make_unique<FlatIndex>(dimension);
}

std::unique_ptr<EvictionPolicy> MakeEviction(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLcfu:
      return std::make_unique<LcfuPolicy>();
    case EvictionKind::kLru:
      return std::make_unique<LruPolicy>();
    case EvictionKind::kLfu:
      return std::make_unique<LfuPolicy>();
  }
  return std::make_unique<LcfuPolicy>();
}

CortexEngine::CortexEngine(const Embedder* embedder, const JudgerModel* judger,
                           CortexEngineOptions options)
    : options_(options),
      judger_(judger),
      cache_(embedder, MakeIndex(options.index_type, embedder->dimension()),
             judger, MakeEviction(options.eviction), options.cache),
      prefetcher_(options.prefetch),
      recalibrator_(options.recalibration) {}

CortexEngine::LookupOutcome CortexEngine::Lookup(std::string_view query,
                                                 double now,
                                                 std::uint64_t session_id) {
  LookupOutcome outcome;
  outcome.cache = cache_.Lookup(query, now);

  if (options_.decision_trace_size > 0) {
    DecisionRecord record;
    record.time = now;
    record.query = std::string(query);
    record.ann_candidates = outcome.cache.sine.ann_candidates;
    record.judger_calls = outcome.cache.sine.judger_calls;
    record.hit = outcome.cache.hit.has_value();
    if (outcome.cache.hit) {
      record.matched_key = outcome.cache.hit->matched_key;
      record.best_similarity = outcome.cache.hit->similarity;
      record.best_judger_score = outcome.cache.hit->judger_score;
    } else {
      for (const auto& judged : outcome.cache.sine.judged) {
        record.best_similarity =
            std::max(record.best_similarity, judged.similarity);
        record.best_judger_score =
            std::max(record.best_judger_score, judged.judger_score);
      }
    }
    decision_trace_.push_back(std::move(record));
    while (decision_trace_.size() > options_.decision_trace_size) {
      decision_trace_.pop_front();
    }
  }

  // Log every judged candidate so the recalibrator sees scores on both
  // sides of the threshold.
  for (const auto& judged : outcome.cache.sine.judged) {
    if (const SemanticElement* se = cache_.Get(judged.id)) {
      recalibrator_.LogJudgment(
          {std::string(query), se->key, se->value, judged.judger_score});
    }
  }

  // Prefetch stream: the canonical key of the knowledge this query resolved
  // to (the matched SE's key on a hit, the query itself on a miss — the
  // miss path will insert it under that key).
  if (options_.prefetch_enabled) {
    const std::string canonical = outcome.cache.hit
                                      ? outcome.cache.hit->matched_key
                                      : std::string(query);
    prefetcher_.Record(session_id, canonical);
    for (auto& p : prefetcher_.Predict(canonical)) {
      if (!cache_.ContainsKey(p.query)) {
        outcome.prefetches.push_back(std::move(p));
      }
    }
  }
  return outcome;
}

std::optional<SeId> CortexEngine::InsertFetched(
    std::string_view query, std::string value, std::optional<Vector> embedding,
    double retrieval_latency_sec, double retrieval_cost_dollars, double now) {
  InsertRequest req;
  req.key = std::string(query);
  req.value = std::move(value);
  req.embedding = std::move(embedding);
  req.staticity = judger_ ? judger_->ScoreStaticity(query, req.value) : 5.0;
  req.retrieval_latency_sec = retrieval_latency_sec;
  req.retrieval_cost_dollars = retrieval_cost_dollars;
  req.initial_frequency = 1;  // a demanded fetch has one confirmed use
  return cache_.Insert(std::move(req), now);
}

std::optional<SeId> CortexEngine::InsertPrefetched(
    std::string_view query, std::string value, double retrieval_latency_sec,
    double retrieval_cost_dollars, double now) {
  InsertRequest req;
  req.key = std::string(query);
  req.value = std::move(value);
  req.staticity = judger_ ? judger_->ScoreStaticity(query, req.value) : 5.0;
  req.retrieval_latency_sec = retrieval_latency_sec;
  req.retrieval_cost_dollars = retrieval_cost_dollars;
  req.initial_frequency = 0;  // speculative: must earn its keep (§4.3)
  return cache_.Insert(std::move(req), now);
}

RecalibrationRound CortexEngine::Recalibrate(
    const std::function<std::string(std::string_view)>& fetch_gt, Rng& rng) {
  RecalibrationRound round = recalibrator_.RunRound(fetch_gt, rng);
  if (round.new_tau) {
    cache_.sine().set_tau_lsm(*round.new_tau);
  }
  return round;
}

}  // namespace cortex
