#include "core/semantic_cache.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "llm/tags.h"
#include "util/check.h"

namespace cortex {

namespace {

double ElapsedSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SemanticCache::SemanticCache(const Embedder* embedder,
                             std::unique_ptr<VectorIndex> index,
                             const JudgerModel* judger,
                             std::unique_ptr<EvictionPolicy> eviction,
                             SemanticCacheOptions options)
    : sine_(embedder, std::move(index), judger, options.sine),
      eviction_(std::move(eviction)),
      options_(options) {
  CHECK(eviction_ != nullptr);
  CHECK_GT(options_.capacity_tokens, 0.0);
}

SemanticCache::LookupResult SemanticCache::Lookup(std::string_view query,
                                                  double now) {
  // Expired entries must not serve hits; purge lazily before matching.
  RemoveExpired(now);
  LookupResult result = Probe(query, now);
  CommitLookup(result, now);
  return result;
}

SemanticCache::LookupResult SemanticCache::Probe(std::string_view query,
                                                 double now,
                                                 ProbeTiming* timing) const {
  LookupResult result;
  const auto embed_t0 = std::chrono::steady_clock::now();
  result.query_embedding = sine_.EmbedQuery(query);
  if (timing != nullptr) timing->embed_seconds = ElapsedSince(embed_t0);

  // An SE whose retrieval completes in the future must not serve hits yet
  // (inserts are recorded eagerly with their completion-time timestamps;
  // visibility honours the clock), and expired entries must not serve hits
  // even though this read-only path cannot remove them.
  SineTiming sine_timing;
  result.sine = sine_.Lookup(query, result.query_embedding,
                             [this, now](SeId id) -> const SemanticElement* {
                               const SemanticElement* se = Get(id);
                               return se && se->created_at <= now &&
                                              !se->ExpiredAt(now)
                                          ? se
                                          : nullptr;
                             },
                             timing != nullptr ? &sine_timing : nullptr);
  if (timing != nullptr) {
    timing->ann_seconds = sine_timing.ann_seconds;
    timing->judger_seconds = sine_timing.judger_seconds;
  }
  if (result.sine.match) {
    const SemanticElement* se = Get(result.sine.match->id);
    CHECK(se != nullptr) << "SINE matched an id absent from the store";
    result.hit = CacheHit{se->id, se->value, se->key,
                          result.sine.match->similarity,
                          result.sine.match->judger_score};
  }
  return result;
}

void SemanticCache::CommitLookup(const LookupResult& result, double now) {
  ++counters_.lookups;
  if (!result.hit) return;
  ++counters_.hits;
  const auto it = store_.find(result.hit->id);
  if (it == store_.end()) return;  // evicted between probe and commit
  ++it->second.frequency;
  it->second.last_access = now;
}

std::optional<SeId> SemanticCache::Insert(InsertRequest request, double now,
                                          InsertTiming* timing) {
  const double size_tokens =
      static_cast<double>(ApproxTokenCount(request.value));
  if (size_tokens > options_.capacity_tokens) {
    ++counters_.rejected_too_large;
    return std::nullopt;
  }

  // Admission doorkeeper: under capacity pressure, knowledge must prove
  // itself (be fetched twice in the recent window) before it may displace
  // resident content.  Counting by value means paraphrases pool their
  // evidence.
  if (options_.admission_enabled) {
    admission_sketch_.Add(request.value);
    // Age the sketch so "recently" tracks a sliding window.
    if (admission_sketch_.total_additions() >
        16 * std::max<std::uint64_t>(1, store_.size())) {
      admission_sketch_.Halve();
    }
    const bool under_pressure =
        usage_tokens_ + size_tokens >
        options_.admission_pressure * options_.capacity_tokens;
    if (under_pressure && !ContainsValue(request.value) &&
        admission_sketch_.Estimate(request.value) <
            options_.admission_threshold) {
      ++counters_.admission_rejects;
      return std::nullopt;
    }
  }

  // Value-identity dedup: the same knowledge fetched under a different
  // phrasing refreshes the existing SE instead of spending capacity twice.
  const std::size_t value_hash = std::hash<std::string>{}(request.value);
  for (auto [it, end] = value_hash_to_id_.equal_range(value_hash); it != end;
       ++it) {
    const auto se_it = store_.find(it->second);
    if (se_it == store_.end() || se_it->second.value != request.value) {
      continue;
    }
    SemanticElement& se = se_it->second;
    se.frequency += request.initial_frequency;
    se.last_access = now;
    // The content was just re-retrieved fresh, so renew its lifetime.
    if (options_.ttl_enabled) {
      se.expiration_time = now + options_.min_ttl_sec +
                           (options_.max_ttl_sec - options_.min_ttl_sec) *
                               (se.staticity - 1.0) / 9.0;
    }
    ++counters_.dedup_refreshes;
    return se.id;
  }

  // Replace semantics on exact key collision.
  if (const auto it = key_to_id_.find(std::string(request.key));
      it != key_to_id_.end()) {
    RemoveInternal(it->second, /*expired=*/false);
  }

  const auto evict_t0 = std::chrono::steady_clock::now();
  RemoveExpired(now);
  EvictDownTo(options_.capacity_tokens - size_tokens, now);
  if (timing != nullptr) timing->evict_seconds = ElapsedSince(evict_t0);

  SemanticElement se;
  se.id = next_id_++;
  se.key = std::move(request.key);
  se.value = std::move(request.value);
  se.embedding = request.embedding ? std::move(*request.embedding)
                                   : sine_.EmbedQuery(se.key);
  se.staticity = std::clamp(request.staticity, 1.0, 10.0);
  se.frequency = request.initial_frequency;
  se.retrieval_latency_sec = request.retrieval_latency_sec;
  se.retrieval_cost_dollars = request.retrieval_cost_dollars;
  se.size_tokens = size_tokens;
  se.created_at = now;
  se.last_access = now;
  se.expiration_time =
      options_.ttl_enabled
          ? now + options_.min_ttl_sec +
                (options_.max_ttl_sec - options_.min_ttl_sec) *
                    (se.staticity - 1.0) / 9.0
          : std::numeric_limits<double>::infinity();

  usage_tokens_ += se.size_tokens;
  sine_.Insert(se);
  key_to_id_.emplace(se.key, se.id);
  value_hash_to_id_.emplace(value_hash, se.id);
  const SeId id = se.id;
  store_.emplace(id, std::move(se));
  ++counters_.insertions;
  return id;
}

std::optional<SeId> SemanticCache::RestoreElement(SemanticElement se,
                                                  double now) {
  if (se.ExpiredAt(now)) return std::nullopt;
  se.size_tokens = static_cast<double>(ApproxTokenCount(se.value));
  if (se.size_tokens > options_.capacity_tokens) {
    ++counters_.rejected_too_large;
    return std::nullopt;
  }
  if (se.embedding.size() != sine_.index().dimension()) {
    se.embedding = sine_.EmbedQuery(se.key);
  }

  // Value-identity dedup: keep whichever copy has the richer history.
  const std::size_t value_hash = std::hash<std::string>{}(se.value);
  for (auto [it, end] = value_hash_to_id_.equal_range(value_hash); it != end;
       ++it) {
    const auto se_it = store_.find(it->second);
    if (se_it == store_.end() || se_it->second.value != se.value) continue;
    SemanticElement& existing = se_it->second;
    existing.frequency = std::max(existing.frequency, se.frequency);
    existing.last_access = std::max(existing.last_access, se.last_access);
    existing.expiration_time =
        std::max(existing.expiration_time, se.expiration_time);
    ++counters_.dedup_refreshes;
    return existing.id;
  }

  if (const auto it = key_to_id_.find(se.key); it != key_to_id_.end()) {
    RemoveInternal(it->second, /*expired=*/false);
  }
  RemoveExpired(now);
  EvictDownTo(options_.capacity_tokens - se.size_tokens, now);

  se.id = next_id_++;
  usage_tokens_ += se.size_tokens;
  sine_.Insert(se);
  key_to_id_.emplace(se.key, se.id);
  value_hash_to_id_.emplace(value_hash, se.id);
  const SeId id = se.id;
  store_.emplace(id, std::move(se));
  ++counters_.insertions;
  return id;
}

bool SemanticCache::ContainsKey(std::string_view key) const {
  return key_to_id_.contains(std::string(key));
}

bool SemanticCache::ContainsValue(std::string_view value) const {
  const std::size_t value_hash = std::hash<std::string_view>{}(value);
  for (auto [it, end] = value_hash_to_id_.equal_range(value_hash); it != end;
       ++it) {
    const auto se_it = store_.find(it->second);
    if (se_it != store_.end() && se_it->second.value == value) return true;
  }
  return false;
}

std::size_t SemanticCache::RemoveExpired(double now) {
  std::vector<SeId> expired;
  for (const auto& [id, se] : store_) {
    if (se.ExpiredAt(now)) expired.push_back(id);
  }
  for (SeId id : expired) RemoveInternal(id, /*expired=*/true);
  return expired.size();
}

void SemanticCache::EvictDownTo(double target_tokens, double now) {
  target_tokens = std::max(target_tokens, 0.0);
  while (usage_tokens_ > target_tokens && !store_.empty()) {
    SeId victim = 0;
    double victim_score = std::numeric_limits<double>::infinity();
    for (const auto& [id, se] : store_) {
      const double score = eviction_->Score(se, now);
      if (score < victim_score) {
        victim_score = score;
        victim = id;
      }
    }
    RemoveInternal(victim, /*expired=*/false);
    ++counters_.evictions;
  }
}

void SemanticCache::RemoveInternal(SeId id, bool expired) {
  const auto it = store_.find(id);
  if (it == store_.end()) return;
  usage_tokens_ -= it->second.size_tokens;
  key_to_id_.erase(it->second.key);
  const std::size_t value_hash = std::hash<std::string>{}(it->second.value);
  for (auto [vit, vend] = value_hash_to_id_.equal_range(value_hash);
       vit != vend; ++vit) {
    if (vit->second == id) {
      value_hash_to_id_.erase(vit);
      break;
    }
  }
  sine_.Remove(id);
  if (expired) ++counters_.expirations;
  store_.erase(it);
}

bool SemanticCache::Remove(SeId id) {
  if (!store_.contains(id)) return false;
  RemoveInternal(id, /*expired=*/false);
  return true;
}

const SemanticElement* SemanticCache::Get(SeId id) const {
  const auto it = store_.find(id);
  return it == store_.end() ? nullptr : &it->second;
}

}  // namespace cortex
