#include "core/semantic_cache.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "llm/tags.h"
#include "util/check.h"

namespace cortex {

namespace {

double ElapsedSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// key_to_id_ key: one exact-key slot per namespace.  0x1f (unit
// separator) cannot appear in tenant ids, so the mapping is injective.
std::string NamespacedKey(std::string_view tenant, std::string_view key) {
  std::string k;
  k.reserve(tenant.size() + 1 + key.size());
  k.append(tenant);
  k.push_back('\x1f');
  k.append(key);
  return k;
}

}  // namespace

SemanticCache::SemanticCache(const Embedder* embedder,
                             std::unique_ptr<VectorIndex> index,
                             const JudgerModel* judger,
                             std::unique_ptr<EvictionPolicy> eviction,
                             SemanticCacheOptions options)
    : sine_(embedder, std::move(index), judger, options.sine),
      eviction_(std::move(eviction)),
      options_(options) {
  CHECK(eviction_ != nullptr);
  CHECK_GT(options_.capacity_tokens, 0.0);
}

SemanticCache::LookupResult SemanticCache::Lookup(std::string_view query,
                                                  double now,
                                                  std::string_view tenant) {
  // Expired entries must not serve hits; purge lazily before matching.
  RemoveExpired(now);
  LookupResult result = Probe(query, now, nullptr, tenant);
  CommitLookup(result, now);
  return result;
}

SemanticCache::LookupResult SemanticCache::Probe(std::string_view query,
                                                 double now,
                                                 ProbeTiming* timing,
                                                 std::string_view tenant) const {
  LookupResult result;
  const auto embed_t0 = std::chrono::steady_clock::now();
  result.query_embedding = sine_.EmbedQuery(query);
  if (timing != nullptr) timing->embed_seconds = ElapsedSince(embed_t0);

  // An SE whose retrieval completes in the future must not serve hits yet
  // (inserts are recorded eagerly with their completion-time timestamps;
  // visibility honours the clock), expired entries must not serve hits
  // even though this read-only path cannot remove them, and another
  // tenant's private entries must stay invisible.
  SineTiming sine_timing;
  result.sine =
      sine_.Lookup(query, result.query_embedding,
                   [this, now, tenant](SeId id) -> const SemanticElement* {
                     const SemanticElement* se = Get(id);
                     return se && se->created_at <= now && !se->ExpiredAt(now) &&
                                    VisibleTo(*se, tenant)
                                ? se
                                : nullptr;
                   },
                   timing != nullptr ? &sine_timing : nullptr);
  if (timing != nullptr) {
    timing->ann_seconds = sine_timing.ann_seconds;
    timing->judger_seconds = sine_timing.judger_seconds;
  }
  if (result.sine.match) {
    const SemanticElement* se = Get(result.sine.match->id);
    CHECK(se != nullptr) << "SINE matched an id absent from the store";
    result.hit = CacheHit{se->id, se->value, se->key,
                          result.sine.match->similarity,
                          result.sine.match->judger_score};
  }
  return result;
}

void SemanticCache::CommitLookup(const LookupResult& result, double now) {
  ++counters_.lookups;
  if (!result.hit) return;
  ++counters_.hits;
  const auto it = store_.find(result.hit->id);
  if (it == store_.end()) return;  // evicted between probe and commit
  ++it->second.frequency;
  it->second.last_access = now;
}

std::optional<SeId> SemanticCache::Insert(InsertRequest request, double now,
                                          InsertTiming* timing) {
  const double size_tokens =
      static_cast<double>(ApproxTokenCount(request.value));
  if (size_tokens > options_.capacity_tokens) {
    ++counters_.rejected_too_large;
    return std::nullopt;
  }

  // Remember the tenant's budget so later global evictions can identify
  // over-budget namespaces, and reject values no budget share could hold.
  if (!request.tenant.empty() && request.budget_tokens > 0.0) {
    tenant_budget_[request.tenant] = request.budget_tokens;
    if (size_tokens > request.budget_tokens) {
      ++counters_.budget_rejects;
      return std::nullopt;
    }
  }

  // Admission doorkeeper: under capacity pressure, knowledge must prove
  // itself (be fetched twice in the recent window) before it may displace
  // resident content.  Counting by value means paraphrases pool their
  // evidence.
  if (options_.admission_enabled) {
    admission_sketch_.Add(request.value);
    // Age the sketch so "recently" tracks a sliding window.
    if (admission_sketch_.total_additions() >
        16 * std::max<std::uint64_t>(1, store_.size())) {
      admission_sketch_.Halve();
    }
    const bool under_pressure =
        usage_tokens_ + size_tokens >
        options_.admission_pressure * options_.capacity_tokens;
    if (under_pressure && !ContainsValue(request.value) &&
        admission_sketch_.Estimate(request.value) <
            options_.admission_threshold) {
      ++counters_.admission_rejects;
      return std::nullopt;
    }
  }

  // Cross-tenant promotion evidence: count the distinct tenants that have
  // (shareably) fetched this exact value.  Reaching the K threshold
  // graduates the value to the shared pool — either by retagging the
  // resident private copy below, or by inserting the new SE as shared.
  const std::size_t value_hash = std::hash<std::string>{}(request.value);
  bool promote = false;
  if (options_.promote_distinct_tenants > 0 && !request.tenant.empty() &&
      request.shareable &&
      request.staticity >= options_.promote_min_staticity) {
    auto seen = promote_seen_.find(value_hash);
    if (seen == promote_seen_.end() &&
        promote_seen_.size() < options_.promote_tracker_capacity) {
      seen = promote_seen_.emplace(value_hash, std::vector<std::string>())
                 .first;
    }
    if (seen != promote_seen_.end()) {
      std::vector<std::string>& confirmers = seen->second;
      if (std::find(confirmers.begin(), confirmers.end(), request.tenant) ==
          confirmers.end()) {
        confirmers.push_back(request.tenant);
      }
      promote = confirmers.size() >= options_.promote_distinct_tenants;
      if (promote) promote_seen_.erase(seen);
    }
  }

  // Value-identity dedup: the same knowledge fetched under a different
  // phrasing refreshes the existing SE instead of spending capacity twice.
  // Only SEs visible to the inserting tenant qualify — a byte-identical
  // value in another tenant's namespace stays separate (unless promotion
  // just graduated it).
  for (auto [it, end] = value_hash_to_id_.equal_range(value_hash); it != end;
       ++it) {
    const auto se_it = store_.find(it->second);
    if (se_it == store_.end() || se_it->second.value != request.value) {
      continue;
    }
    SemanticElement& se = se_it->second;
    // Promotion may retag a resident private copy (the inserter's own or
    // a foreign tenant's) into the shared pool, but only when that copy's
    // own metadata allows sharing.
    const bool promote_this = promote && !se.tenant.empty() && se.shareable &&
                              se.staticity >= options_.promote_min_staticity;
    if (!VisibleTo(se, request.tenant) && !promote_this) continue;
    if (promote_this) {
      tenant_usage_[se.tenant].tokens -= se.size_tokens;
      key_to_id_.erase(NamespacedKey(se.tenant, se.key));
      se.tenant.clear();
      tenant_usage_[se.tenant].tokens += se.size_tokens;
      // The shared namespace may already hold this exact key with other
      // content; the freshly promoted copy replaces it.
      if (const auto shared_it = key_to_id_.find(NamespacedKey("", se.key));
          shared_it != key_to_id_.end() && shared_it->second != se.id) {
        RemoveInternal(shared_it->second, /*expired=*/false);
      }
      key_to_id_[NamespacedKey("", se.key)] = se.id;
      ++counters_.promotions;
    }
    se.shareable = se.shareable && request.shareable;
    se.frequency += request.initial_frequency;
    se.last_access = now;
    // The content was just re-retrieved fresh, so renew its lifetime.
    if (options_.ttl_enabled) {
      se.expiration_time = now + options_.min_ttl_sec +
                           (options_.max_ttl_sec - options_.min_ttl_sec) *
                               (se.staticity - 1.0) / 9.0;
    }
    ++counters_.dedup_refreshes;
    return se.id;
  }

  // A promoted value with no resident copy enters the shared pool
  // directly.
  if (promote) request.tenant.clear();

  // Replace semantics on exact key collision, per namespace.
  if (const auto it =
          key_to_id_.find(NamespacedKey(request.tenant, request.key));
      it != key_to_id_.end()) {
    RemoveInternal(it->second, /*expired=*/false);
  }

  const auto evict_t0 = std::chrono::steady_clock::now();
  RemoveExpired(now);
  // Budget first: the inserting tenant makes room inside its own share
  // before the cache considers anyone else's entries.
  if (!request.tenant.empty() && request.budget_tokens > 0.0) {
    EvictTenantDownTo(request.tenant, request.budget_tokens - size_tokens,
                      now);
  }
  EvictDownTo(options_.capacity_tokens - size_tokens, now, request.tenant);
  if (timing != nullptr) timing->evict_seconds = ElapsedSince(evict_t0);

  SemanticElement se;
  se.id = next_id_++;
  se.key = std::move(request.key);
  se.value = std::move(request.value);
  se.tenant = std::move(request.tenant);
  se.shareable = request.shareable;
  se.embedding = request.embedding ? std::move(*request.embedding)
                                   : sine_.EmbedQuery(se.key);
  se.staticity = std::clamp(request.staticity, 1.0, 10.0);
  se.frequency = request.initial_frequency;
  se.retrieval_latency_sec = request.retrieval_latency_sec;
  se.retrieval_cost_dollars = request.retrieval_cost_dollars;
  se.size_tokens = size_tokens;
  se.created_at = now;
  se.last_access = now;
  se.expiration_time =
      options_.ttl_enabled
          ? now + options_.min_ttl_sec +
                (options_.max_ttl_sec - options_.min_ttl_sec) *
                    (se.staticity - 1.0) / 9.0
          : std::numeric_limits<double>::infinity();

  usage_tokens_ += se.size_tokens;
  tenant_usage_[se.tenant].tokens += se.size_tokens;
  sine_.Insert(se);
  key_to_id_.emplace(NamespacedKey(se.tenant, se.key), se.id);
  value_hash_to_id_.emplace(value_hash, se.id);
  const SeId id = se.id;
  store_.emplace(id, std::move(se));
  ++counters_.insertions;
  return id;
}

std::optional<SeId> SemanticCache::RestoreElement(SemanticElement se,
                                                  double now) {
  if (se.ExpiredAt(now)) return std::nullopt;
  se.size_tokens = static_cast<double>(ApproxTokenCount(se.value));
  if (se.size_tokens > options_.capacity_tokens) {
    ++counters_.rejected_too_large;
    return std::nullopt;
  }
  if (se.embedding.size() != sine_.index().dimension()) {
    se.embedding = sine_.EmbedQuery(se.key);
  }

  // Value-identity dedup: keep whichever copy has the richer history.
  // Restores only merge within the incoming SE's own visibility — its
  // namespace plus the shared pool — so one tenant's snapshot can never
  // collapse another tenant's private copy.
  const std::size_t value_hash = std::hash<std::string>{}(se.value);
  for (auto [it, end] = value_hash_to_id_.equal_range(value_hash); it != end;
       ++it) {
    const auto se_it = store_.find(it->second);
    if (se_it == store_.end() || se_it->second.value != se.value) continue;
    SemanticElement& existing = se_it->second;
    if (!VisibleTo(existing, se.tenant)) continue;
    existing.frequency = std::max(existing.frequency, se.frequency);
    existing.last_access = std::max(existing.last_access, se.last_access);
    existing.expiration_time =
        std::max(existing.expiration_time, se.expiration_time);
    existing.shareable = existing.shareable && se.shareable;
    ++counters_.dedup_refreshes;
    return existing.id;
  }

  if (const auto it = key_to_id_.find(NamespacedKey(se.tenant, se.key));
      it != key_to_id_.end()) {
    RemoveInternal(it->second, /*expired=*/false);
  }
  RemoveExpired(now);
  EvictDownTo(options_.capacity_tokens - se.size_tokens, now, se.tenant);

  se.id = next_id_++;
  usage_tokens_ += se.size_tokens;
  tenant_usage_[se.tenant].tokens += se.size_tokens;
  sine_.Insert(se);
  key_to_id_.emplace(NamespacedKey(se.tenant, se.key), se.id);
  value_hash_to_id_.emplace(value_hash, se.id);
  const SeId id = se.id;
  store_.emplace(id, std::move(se));
  ++counters_.insertions;
  return id;
}

bool SemanticCache::ContainsKey(std::string_view key,
                                std::string_view tenant) const {
  return key_to_id_.contains(NamespacedKey(tenant, key));
}

bool SemanticCache::ContainsValue(std::string_view value) const {
  const std::size_t value_hash = std::hash<std::string_view>{}(value);
  for (auto [it, end] = value_hash_to_id_.equal_range(value_hash); it != end;
       ++it) {
    const auto se_it = store_.find(it->second);
    if (se_it != store_.end() && se_it->second.value == value) return true;
  }
  return false;
}

std::size_t SemanticCache::RemoveExpired(double now) {
  std::vector<SeId> expired;
  for (const auto& [id, se] : store_) {
    if (se.ExpiredAt(now)) expired.push_back(id);
  }
  for (SeId id : expired) RemoveInternal(id, /*expired=*/true);
  return expired.size();
}

void SemanticCache::EvictDownTo(double target_tokens, double now,
                                std::string_view offender) {
  target_tokens = std::max(target_tokens, 0.0);
  // Victim tiers, best first: the offending tenant's own entries, then
  // any tenant holding more than its recorded budget, then the shared
  // pool, and only as a last resort a within-budget bystander tenant
  // (reachable only when budgets oversubscribe the capacity).  Within a
  // tier the eviction policy's lowest score loses, exactly as before.
  const auto tier_of = [this, offender](const SemanticElement& se) -> int {
    if (!offender.empty() && se.tenant == offender) return 0;
    if (se.tenant.empty()) return 2;
    if (const auto budget = tenant_budget_.find(se.tenant);
        budget != tenant_budget_.end() && budget->second > 0.0) {
      const auto usage = tenant_usage_.find(se.tenant);
      if (usage != tenant_usage_.end() &&
          usage->second.tokens > budget->second) {
        return 1;
      }
    }
    return 3;
  };
  while (usage_tokens_ > target_tokens && !store_.empty()) {
    SeId victim = 0;
    int victim_tier = 4;
    double victim_score = std::numeric_limits<double>::infinity();
    for (const auto& [id, se] : store_) {
      const int tier = tier_of(se);
      if (tier > victim_tier) continue;
      const double score = eviction_->Score(se, now);
      if (tier < victim_tier || score < victim_score) {
        victim_tier = tier;
        victim_score = score;
        victim = id;
      }
    }
    const auto victim_it = store_.find(victim);
    CHECK(victim_it != store_.end());
    ++tenant_usage_[victim_it->second.tenant].evictions;
    RemoveInternal(victim, /*expired=*/false);
    ++counters_.evictions;
  }
}

void SemanticCache::EvictTenantDownTo(const std::string& tenant,
                                      double budget_tokens, double now) {
  budget_tokens = std::max(budget_tokens, 0.0);
  while (!store_.empty()) {
    const auto usage = tenant_usage_.find(tenant);
    if (usage == tenant_usage_.end() || usage->second.tokens <= budget_tokens) {
      return;
    }
    SeId victim = 0;
    double victim_score = std::numeric_limits<double>::infinity();
    bool found = false;
    for (const auto& [id, se] : store_) {
      if (se.tenant != tenant) continue;
      const double score = eviction_->Score(se, now);
      if (!found || score < victim_score) {
        found = true;
        victim_score = score;
        victim = id;
      }
    }
    if (!found) return;
    ++usage->second.evictions;
    RemoveInternal(victim, /*expired=*/false);
    ++counters_.evictions;
  }
}

SemanticCache::TenantUsage SemanticCache::TenantUsageFor(
    std::string_view tenant) const {
  const auto it = tenant_usage_.find(std::string(tenant));
  return it != tenant_usage_.end() ? it->second : TenantUsage{};
}

void SemanticCache::RemoveInternal(SeId id, bool expired) {
  const auto it = store_.find(id);
  if (it == store_.end()) return;
  usage_tokens_ -= it->second.size_tokens;
  tenant_usage_[it->second.tenant].tokens -= it->second.size_tokens;
  key_to_id_.erase(NamespacedKey(it->second.tenant, it->second.key));
  const std::size_t value_hash = std::hash<std::string>{}(it->second.value);
  for (auto [vit, vend] = value_hash_to_id_.equal_range(value_hash);
       vit != vend; ++vit) {
    if (vit->second == id) {
      value_hash_to_id_.erase(vit);
      break;
    }
  }
  sine_.Remove(id);
  if (expired) ++counters_.expirations;
  store_.erase(it);
}

bool SemanticCache::Remove(SeId id) {
  if (!store_.contains(id)) return false;
  RemoveInternal(id, /*expired=*/false);
  return true;
}

const SemanticElement* SemanticCache::Get(SeId id) const {
  const auto it = store_.find(id);
  return it == store_.end() ? nullptr : &it->second;
}

}  // namespace cortex
