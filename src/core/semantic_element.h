// SemanticElement (SE): Cortex's caching unit (paper §4.1, Fig. 5).
//
// A key-value pair — the agent's tool query and the retrieved knowledge —
// augmented with the metadata that drives every cache policy decision: the
// embedding fingerprint used for matching, the staticity score used for
// TTL/eviction, and the per-item performance profile (frequency, retrieval
// latency, monetary cost, size).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "embedding/vector_ops.h"

namespace cortex {

using SeId = std::uint64_t;

struct SemanticElement {
  SeId id = 0;
  std::string key;    // the tool query (semantic key)
  std::string value;  // the retrieved information

  // Owning namespace: only this tenant's lookups may match the SE.  The
  // empty string is the shared/global pool visible to every tenant.
  std::string tenant;
  // Privacy gate for cross-tenant promotion: only shareable SEs may
  // graduate from a private namespace to the shared pool.
  bool shareable = true;

  Vector embedding;   // unit-length semantic fingerprint of `key`

  // 1 (ephemeral: weather) .. 10 (time-invariant fact: where the Louvre is).
  double staticity = 5.0;
  // Confirmed semantic hits (a prefetched SE starts at 0 — §4.3).
  std::uint64_t frequency = 0;
  // Cost profile of the original remote retrieval.
  double retrieval_latency_sec = 0.0;
  double retrieval_cost_dollars = 0.0;
  // Value size in tokens (the LCFU normaliser).
  double size_tokens = 0.0;

  // Lifecycle timestamps (simulation seconds).
  double created_at = 0.0;
  double last_access = 0.0;
  double expiration_time = std::numeric_limits<double>::infinity();

  bool ExpiredAt(double now) const noexcept { return expiration_time <= now; }
  double TtlRemaining(double now) const noexcept {
    return expiration_time - now;
  }
};

}  // namespace cortex
