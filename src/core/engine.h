// CortexEngine: the assembled cache engine — SemanticCache (Sine + LCFU +
// TTL) plus the Markov prefetcher and the threshold recalibrator.  This is
// the pure-logic core, independent of the simulation: the resolver layer
// (core/resolvers.h) binds it to the virtual clock, the GPU simulator, and
// the remote services.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "core/prefetcher.h"
#include "core/recalibrator.h"
#include "core/semantic_cache.h"

namespace cortex {

enum class IndexType { kFlat, kIvf, kHnsw, kPq };
enum class EvictionKind { kLcfu, kLru, kLfu };

struct CortexEngineOptions {
  SemanticCacheOptions cache;
  IndexType index_type = IndexType::kFlat;
  EvictionKind eviction = EvictionKind::kLcfu;

  bool prefetch_enabled = true;
  PrefetcherOptions prefetch;

  bool recalibration_enabled = true;
  RecalibratorOptions recalibration;
  double recalibration_interval_sec = 60.0;

  // Decision tracing: keep a ring buffer of the last N lookup decisions
  // (stage-1 candidates, judger scores, outcome) for debugging "why did
  // this miss?".  Zero disables tracing.
  std::size_t decision_trace_size = 0;

  // CPU-side ANN search latency added to every lookup (the paper measures
  // ~0.02 s total cache retrieval; embedding runs on the GPU separately).
  double ann_search_seconds = 0.015;
};

std::unique_ptr<VectorIndex> MakeIndex(IndexType type, std::size_t dimension);
std::unique_ptr<EvictionPolicy> MakeEviction(EvictionKind kind);

class CortexEngine {
 public:
  // embedder/judger are borrowed and must outlive the engine.
  CortexEngine(const Embedder* embedder, const JudgerModel* judger,
               CortexEngineOptions options = {});

  struct LookupOutcome {
    SemanticCache::LookupResult cache;   // hit/miss + stage telemetry
    std::vector<Prediction> prefetches;  // proposals for this step
  };

  // One traced lookup decision (when decision_trace_size > 0).
  struct DecisionRecord {
    double time = 0.0;
    std::string query;
    std::size_t ann_candidates = 0;
    std::size_t judger_calls = 0;
    bool hit = false;
    std::string matched_key;     // empty on miss
    double best_similarity = 0.0;
    double best_judger_score = 0.0;
  };

  // Full lookup path: semantic match, judgment logging, prefetch-stream
  // recording, and prefetch proposals (on both hits and misses — the
  // stream is the sequence of validated queries).  `session_id` keys the
  // prefetch stream so concurrent agent sessions do not interleave.
  LookupOutcome Lookup(std::string_view query, double now,
                       std::uint64_t session_id = 0);

  // Inserts knowledge fetched on a miss; scores staticity via the judger.
  std::optional<SeId> InsertFetched(std::string_view query, std::string value,
                                    std::optional<Vector> embedding,
                                    double retrieval_latency_sec,
                                    double retrieval_cost_dollars, double now);

  // Inserts a speculative prefetch (enters with zero frequency).
  std::optional<SeId> InsertPrefetched(std::string_view query,
                                       std::string value,
                                       double retrieval_latency_sec,
                                       double retrieval_cost_dollars,
                                       double now);

  // Runs one recalibration round and applies the new threshold.
  RecalibrationRound Recalibrate(
      const std::function<std::string(std::string_view)>& fetch_gt, Rng& rng);

  // The most recent traced decisions, oldest first.
  const std::deque<DecisionRecord>& decision_trace() const noexcept {
    return decision_trace_;
  }

  SemanticCache& cache() noexcept { return cache_; }
  const SemanticCache& cache() const noexcept { return cache_; }
  MarkovPrefetcher& prefetcher() noexcept { return prefetcher_; }
  Recalibrator& recalibrator() noexcept { return recalibrator_; }
  const CortexEngineOptions& options() const noexcept { return options_; }
  const JudgerModel* judger() const noexcept { return judger_; }

 private:
  CortexEngineOptions options_;
  const JudgerModel* judger_;
  SemanticCache cache_;
  MarkovPrefetcher prefetcher_;
  Recalibrator recalibrator_;
  std::deque<DecisionRecord> decision_trace_;
};

}  // namespace cortex
