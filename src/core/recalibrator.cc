#include "core/recalibrator.h"

#include <algorithm>

namespace cortex {

Recalibrator::Recalibrator(RecalibratorOptions options) : options_(options) {}

void Recalibrator::LogJudgment(JudgedSample sample) {
  log_.push_back(std::move(sample));
  while (log_.size() > options_.max_log) log_.pop_front();
}

RecalibrationRound Recalibrator::RunRound(
    const std::function<std::string(std::string_view)>& fetch_gt, Rng& rng) {
  RecalibrationRound round;
  if (log_.empty()) return round;

  // D_sample: a diverse subset of the recent log (uniform without
  // replacement over the retained window).
  std::vector<std::size_t> order(log_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const std::size_t take =
      std::min(options_.samples_per_round, order.size());

  for (std::size_t i = 0; i < take; ++i) {
    const JudgedSample& s = log_[order[i]];
    const std::string ground = fetch_gt(s.query);
    ++round.gt_fetches;
    // A failed ground-truth fetch (throttled/unavailable) is not evidence
    // about the judger — skip rather than mislabel.
    if (ground.empty()) continue;
    // EvaluateGT: the cached answer is correct iff it matches what a fresh
    // retrieval for the query returns.
    validation_.push_back({s.judger_score, ground == s.cached_value});
    ++round.annotated;
  }
  while (validation_.size() > options_.max_validation_set) {
    validation_.pop_front();
  }

  // Need both classes represented before the curve is meaningful.
  if (validation_.size() < 2 * options_.samples_per_round) return round;

  auto tau = ThresholdForPrecision(
      std::vector<LabeledSample>(validation_.begin(), validation_.end()),
      options_.target_precision);
  if (tau) {
    round.new_tau = std::clamp(*tau, options_.min_tau, options_.max_tau);
  }
  return round;
}

std::optional<double> Recalibrator::ThresholdForPrecision(
    std::vector<LabeledSample> samples, double target) {
  if (samples.empty()) return std::nullopt;
  std::sort(samples.begin(), samples.end(),
            [](const LabeledSample& a, const LabeledSample& b) {
              return a.score > b.score;
            });
  // Walk thresholds from strict to permissive, tracking precision of the
  // predicted-positive prefix; remember the most permissive threshold that
  // still meets the target.
  std::optional<double> best;
  std::size_t positives = 0, correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ++positives;
    if (samples[i].correct) ++correct;
    // Thresholds are only valid at boundaries between distinct scores
    // (otherwise the cutoff would split equal scores inconsistently).
    if (i + 1 < samples.size() && samples[i + 1].score == samples[i].score) {
      continue;
    }
    const double precision =
        static_cast<double>(correct) / static_cast<double>(positives);
    if (precision >= target) best = samples[i].score;
  }
  return best;
}

}  // namespace cortex
