#include "core/sine.h"

#include <chrono>

#include "util/check.h"

namespace cortex {

namespace {

double ElapsedSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Sine::Sine(const Embedder* embedder, std::unique_ptr<VectorIndex> index,
           const JudgerModel* judger, SineOptions options)
    : embedder_(embedder),
      index_(std::move(index)),
      judger_(judger),
      options_(options) {
  CHECK(embedder_ != nullptr && index_ != nullptr);
  CHECK(!options_.use_judger || judger_ != nullptr)
      << "use_judger requires a judger model";
}

Vector Sine::EmbedQuery(std::string_view query) const {
  return embedder_->Embed(query);
}

SineLookupResult Sine::Lookup(std::string_view query,
                              const Vector& query_embedding,
                              const SeAccessor& get_se,
                              SineTiming* timing) const {
  SineLookupResult result;
  const auto ann_t0 = std::chrono::steady_clock::now();
  const auto candidates =
      index_->Search(query_embedding, options_.top_k, options_.tau_sim);
  if (timing != nullptr) timing->ann_seconds = ElapsedSince(ann_t0);
  result.ann_candidates = candidates.size();

  if (!options_.use_judger) {
    // Agent_ANN ablation: top similarity wins outright.
    for (const auto& c : candidates) {
      if (c.similarity < options_.ann_only_threshold) continue;
      if (get_se(c.id) == nullptr) continue;
      result.match = SineCandidate{c.id, c.similarity, 0.0};
      break;  // candidates are sorted best-first
    }
    return result;
  }

  // Candidates arrive best-first; validation short-circuits on the first
  // acceptance.  Judging every survivor would multiply judger load (and
  // with it the latency of every hit) for marginal precision gain.
  const auto judger_t0 = std::chrono::steady_clock::now();
  for (const auto& c : candidates) {
    const SemanticElement* se = get_se(c.id);
    if (se == nullptr) continue;
    JudgeRequest req;
    req.query = query;
    req.cached_query = se->key;
    req.cached_result = se->value;
    req.embedding_similarity = c.similarity;
    const double score = judger_->Judge(req);
    ++result.judger_calls;
    result.judged.push_back({c.id, c.similarity, score});
    if (score >= options_.tau_lsm) {
      result.match = SineCandidate{c.id, c.similarity, score};
      break;
    }
  }
  if (timing != nullptr) timing->judger_seconds = ElapsedSince(judger_t0);
  return result;
}

void Sine::Insert(const SemanticElement& se) {
  index_->Add(se.id, se.embedding);
}

void Sine::Remove(SeId id) { index_->Remove(id); }

}  // namespace cortex
