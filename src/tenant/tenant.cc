#include "tenant/tenant.h"

#include <cctype>

namespace cortex::tenant {

bool ValidTenantId(std::string_view id) noexcept {
  if (id.empty() || id.size() > kMaxTenantIdLength) return false;
  for (unsigned char c : id) {
    if (c <= 0x20 || c == 0x7f || c == '|' || c == '=') return false;
  }
  return true;
}

std::string PlacementKeyFor(std::string_view id) {
  std::string key = "tenant:";
  key.append(id);
  return key;
}

std::string MetricPartFor(std::string_view id) {
  std::string part;
  part.reserve(id.size());
  for (unsigned char c : id) {
    const bool ok = std::isalnum(c) != 0 || c == '_';
    part.push_back(ok ? static_cast<char>(c) : '_');
  }
  return part;
}

}  // namespace cortex::tenant
