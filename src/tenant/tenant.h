// Tenant identity for the multi-tenant serving tier (DESIGN.md §12).
//
// A TenantId is an opaque caller-chosen string; the empty id names the
// shared/global pool that every tenant can read.  Ids travel on the wire
// (TLOOKUP/TINSERT), ride on SemanticElement::tenant, key the router's
// `tenant:<id>|` hash-ring prefix, and appear (sanitized) inside
// bounded-cardinality `cortex_tenant_*` metric names — so the character
// set is restricted here once, and every layer validates at the edge.
#pragma once

#include <string>
#include <string_view>

namespace cortex::tenant {

using TenantId = std::string;

// The shared/global pool: SEs with an empty tenant are visible to all.
inline constexpr std::string_view kSharedTenant = "";

// Longest accepted id.  Bounds wire fields, metric-name length, and the
// per-tenant maps in TenantRegistry.
inline constexpr std::size_t kMaxTenantIdLength = 64;

// A valid id is non-empty, at most kMaxTenantIdLength bytes, and contains
// no control characters, whitespace, '|' (placement-key separator), or
// '=' (STATS key=value separator).  The empty id is rejected here: callers
// meaning "shared pool" use the untenanted verbs instead.
bool ValidTenantId(std::string_view id) noexcept;

// Placement key for the cluster hash ring: "tenant:<id>".  Matches the
// prefix ClusterRouter::PlacementKey() extracts from "tenant:<id>|query"
// keys, so every query of one tenant lands on the same owner set.
std::string PlacementKeyFor(std::string_view id);

// Metric-name fragment: bytes outside [A-Za-z0-9_] become '_' so the
// result composes into `cortex_tenant_<part>_<metric>` without breaking
// either exposition format.
std::string MetricPartFor(std::string_view id);

}  // namespace cortex::tenant
