#include "tenant/registry.h"

#include <algorithm>
#include <string>
#include <utility>

namespace cortex::tenant {

namespace {

void Bump(telemetry::Counter* c, std::uint64_t n = 1) {
  if (c != nullptr && n > 0) c->Inc(n);
}

}  // namespace

TenantRegistry::TenantRegistry(telemetry::MetricRegistry* metrics,
                               TenantRegistryOptions options)
    : options_(options), metrics_(metrics) {
  if (metrics_ == nullptr) return;
  MutexLock lock(mu_);
  known_gauge_ = metrics_->GetGauge("cortex_tenants_known");
  // The overflow set is shared by every tenant past the instrument cap;
  // cardinality 1 by construction, so static names are fine here.
  overflow_.hits = metrics_->GetCounter("cortex_tenants_overflow_hits");
  overflow_.misses = metrics_->GetCounter("cortex_tenants_overflow_misses");
  overflow_.inserts = metrics_->GetCounter("cortex_tenants_overflow_inserts");
  overflow_.insert_rejects =
      metrics_->GetCounter("cortex_tenants_overflow_insert_rejects");
  overflow_.evictions =
      metrics_->GetCounter("cortex_tenants_overflow_evictions");
  overflow_.quota_rejects =
      metrics_->GetCounter("cortex_tenants_overflow_quota_rejects");
  overflow_.promotions =
      metrics_->GetCounter("cortex_tenants_overflow_promotions");
}

TenantRegistry::PerTenant& TenantRegistry::FindOrCreate(const TenantId& id) {
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;

  PerTenant state;
  state.quota = options_.default_quota;
  if (state.quota.rate_per_sec > 0.0) {
    state.bucket.emplace(state.quota.rate_per_sec, state.quota.rate_burst);
  }
  state.instruments = &overflow_;
  if (metrics_ != nullptr &&
      instrumented_.size() < options_.max_instrumented_tenants) {
    auto set = std::make_unique<Instruments>();
    const std::string prefix = "cortex_tenant_" + MetricPartFor(id) + "_";
    set->hits = metrics_->GetCounter(prefix + "hits");
    set->misses = metrics_->GetCounter(prefix + "misses");
    set->inserts = metrics_->GetCounter(prefix + "inserts");
    set->insert_rejects = metrics_->GetCounter(prefix + "insert_rejects");
    set->evictions = metrics_->GetCounter(prefix + "evictions");
    set->quota_rejects = metrics_->GetCounter(prefix + "quota_rejects");
    set->promotions = metrics_->GetCounter(prefix + "promotions");
    state.instruments = set.get();
    instrumented_.push_back(std::move(set));
  }
  auto [pos, inserted] = tenants_.emplace(id, std::move(state));
  (void)inserted;
  if (known_gauge_ != nullptr) {
    known_gauge_->Set(static_cast<double>(tenants_.size()));
  }
  return pos->second;
}

void TenantRegistry::SetQuota(const TenantId& id, const TenantQuota& quota) {
  MutexLock lock(mu_);
  PerTenant& state = FindOrCreate(id);
  state.quota = quota;
  state.bucket.reset();
  if (quota.rate_per_sec > 0.0) {
    state.bucket.emplace(quota.rate_per_sec, quota.rate_burst);
  }
}

TenantQuota TenantRegistry::QuotaFor(const TenantId& id) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(id);
  return it != tenants_.end() ? it->second.quota : options_.default_quota;
}

double TenantRegistry::BudgetTokens(const TenantId& id,
                                    double capacity_tokens) const {
  if (id.empty()) return 0.0;
  const TenantQuota quota = QuotaFor(id);
  if (quota.budget_fraction <= 0.0 || quota.budget_fraction >= 1.0) {
    return 0.0;
  }
  return quota.budget_fraction * capacity_tokens;
}

bool TenantRegistry::AdmitRequest(const TenantId& id, double now) {
  if (id.empty()) return true;
  MutexLock lock(mu_);
  PerTenant& state = FindOrCreate(id);
  if (!state.bucket.has_value()) return true;
  if (state.bucket->TryAcquire(now)) return true;
  ++quota_rejects_;
  Bump(state.instruments->quota_rejects);
  return false;
}

void TenantRegistry::OnLookup(const TenantId& id, bool hit) {
  if (id.empty()) return;
  MutexLock lock(mu_);
  const Instruments* set = FindOrCreate(id).instruments;
  Bump(hit ? set->hits : set->misses);
}

void TenantRegistry::OnInsert(const TenantId& id, bool accepted) {
  if (id.empty()) return;
  MutexLock lock(mu_);
  const Instruments* set = FindOrCreate(id).instruments;
  Bump(accepted ? set->inserts : set->insert_rejects);
}

void TenantRegistry::OnEvictions(const TenantId& id, std::uint64_t n) {
  if (id.empty() || n == 0) return;
  MutexLock lock(mu_);
  Bump(FindOrCreate(id).instruments->evictions, n);
}

void TenantRegistry::OnPromotion(const TenantId& id) {
  if (id.empty()) return;
  MutexLock lock(mu_);
  Bump(FindOrCreate(id).instruments->promotions);
}

std::size_t TenantRegistry::KnownTenantCount() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

std::vector<TenantId> TenantRegistry::KnownTenants() const {
  MutexLock lock(mu_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  return out;
}

std::uint64_t TenantRegistry::quota_rejects() const {
  MutexLock lock(mu_);
  return quota_rejects_;
}

}  // namespace cortex::tenant
