// TenantRegistry: per-tenant quotas, LCFU budget shares, admission
// control, and bounded-cardinality telemetry (DESIGN.md §12).
//
// One registry serves a whole ConcurrentShardedEngine.  It answers three
// questions on the hot path:
//   - AdmitRequest(tenant, now): has this tenant budget left in its
//     request-rate token bucket?  (Server-side admission control; the
//     global server bucket still applies on top.)
//   - BudgetTokens(tenant, capacity): how many cache tokens may this
//     tenant hold per shard?  (Passed into SemanticCache inserts so the
//     core eviction loop can stay policy-free.)
//   - On{Lookup,Insert,Evictions,QuotaReject}: per-tenant counters.
//
// Metric cardinality is bounded: the first `max_instrumented_tenants`
// distinct tenants get their own `cortex_tenant_<id>_*` instruments
// (registered through the dynamic-prefix path the analyzer's
// metric-contract requires); every later tenant shares the
// `cortex_tenants_overflow_*` set, so a tenant-id flood cannot grow the
// registry without bound.  Quota state itself stays exact per tenant.
//
// Thread-safe.  All state sits under one RankedMutex at
// LockRank::kTenantRegistry (60): above the shard locks so engine code
// may consult quotas while holding a shard, below kLeaf so instrument
// registration stays legal under it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/rate_limiter.h"
#include "telemetry/metrics.h"
#include "tenant/tenant.h"
#include "util/ranked_mutex.h"
#include "util/thread_annotations.h"

namespace cortex::tenant {

// Per-tenant limits.  The defaults are deliberately permissive: a tenant
// may fill the whole cache (but eviction under pressure still victimises
// its own namespace first) and is not rate limited.
struct TenantQuota {
  // Share of each shard's capacity_tokens this tenant may hold.  Values
  // <= 0 or >= 1 mean "up to the whole shard".
  double budget_fraction = 1.0;
  // Sustained requests/sec through AdmitRequest; <= 0 means unlimited.
  double rate_per_sec = 0.0;
  // Token-bucket burst for the rate quota.
  double rate_burst = 64.0;
};

struct TenantRegistryOptions {
  // Quota applied to tenants never configured via SetQuota().
  TenantQuota default_quota;
  // Distinct tenants that get dedicated metric instruments before new
  // tenants fall into the shared overflow set.
  std::size_t max_instrumented_tenants = 32;
};

class TenantRegistry {
 public:
  // `metrics` may be null (tests, offline sims): counters become no-ops
  // while quota accounting still works.
  explicit TenantRegistry(telemetry::MetricRegistry* metrics = nullptr,
                          TenantRegistryOptions options = {});

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Replaces the tenant's quota.  Resets its rate bucket to the new
  // rate/burst.
  void SetQuota(const TenantId& id, const TenantQuota& quota);
  TenantQuota QuotaFor(const TenantId& id) const;

  // Cache-token budget for one shard of `capacity_tokens`.  Returns 0 for
  // "unlimited" (shared pool, or budget_fraction outside (0, 1)).
  double BudgetTokens(const TenantId& id, double capacity_tokens) const;

  // Rate-quota admission at time `now` (seconds, monotone non-decreasing
  // per registry).  The shared pool (empty id) is always admitted.
  bool AdmitRequest(const TenantId& id, double now);

  // Per-tenant telemetry.  All are cheap (one map find under the registry
  // mutex + striped counter increments) and safe with a null metric
  // registry.
  void OnLookup(const TenantId& id, bool hit);
  void OnInsert(const TenantId& id, bool accepted);
  void OnEvictions(const TenantId& id, std::uint64_t n);
  void OnPromotion(const TenantId& id);

  std::size_t KnownTenantCount() const;
  std::vector<TenantId> KnownTenants() const;
  std::uint64_t quota_rejects() const;

 private:
  // Dedicated or overflow instrument set; pointers may be null when the
  // registry was built without telemetry.
  struct Instruments {
    telemetry::Counter* hits = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* inserts = nullptr;
    telemetry::Counter* insert_rejects = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* quota_rejects = nullptr;
    telemetry::Counter* promotions = nullptr;
  };

  struct PerTenant {
    TenantQuota quota;
    // Engaged only when quota.rate_per_sec > 0.
    std::optional<TokenBucket> bucket;
    // Borrowed from instrumented_ or &overflow_; never null.
    const Instruments* instruments = nullptr;
  };

  PerTenant& FindOrCreate(const TenantId& id) REQUIRES(mu_);

  const TenantRegistryOptions options_;
  telemetry::MetricRegistry* const metrics_;

  mutable RankedMutex mu_{LockRank::kTenantRegistry, "tenant.registry_mu"};
  std::map<TenantId, PerTenant, std::less<>> tenants_ GUARDED_BY(mu_);
  // Owns the per-tenant instrument sets so PerTenant can hold stable
  // pointers while tenants_ rebalances.
  std::vector<std::unique_ptr<Instruments>> instrumented_ GUARDED_BY(mu_);
  Instruments overflow_ GUARDED_BY(mu_);
  telemetry::Gauge* known_gauge_ GUARDED_BY(mu_) = nullptr;
  std::uint64_t quota_rejects_ GUARDED_BY(mu_) = 0;
};

}  // namespace cortex::tenant
