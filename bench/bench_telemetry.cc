// Telemetry overhead (DESIGN.md §8): what does live observability cost on
// the hot path?
//
// Part 1 — instrument micro-costs, ns/op at 1 and 8 threads: striped
// Counter::Inc vs a single shared atomic (the thing the striping buys us
// back under contention), Gauge::Add, AtomicHistogram::Observe, and a full
// RequestTrace fill + FlightRecorder::Record.
//
// Part 2 — the macro A/B the subsystem is judged by: replay the Musique
// workload through ConcurrentShardedEngine with the registry enabled vs
// disabled and assert the throughput delta stays under 5%.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/concurrent_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;
namespace telemetry = cortex::telemetry;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs `op` iters times on each of num_threads threads; returns aggregate
// ns per operation (wall time / total ops).
template <typename Op>
double MeasureNsPerOp(std::size_t num_threads, std::size_t iters, Op op) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  const double t0 = NowSec();
  for (std::size_t t = 0; t < num_threads; ++t) {
    pool.emplace_back([&go, iters, op] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < iters; ++i) op(i);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double wall = NowSec() - t0;
  return wall * 1e9 / static_cast<double>(num_threads * iters);
}

// Measured numbers carried into the --json dump (keys named so
// scripts/bench_diff.py applies its wide perf band to every ns/op and
// throughput value).
struct MicroResults {
  double shared_atomic_ns_8t = 0.0;
  double counter_ns_1t = 0.0;
  double counter_ns_8t = 0.0;
  double histogram_ns_1t = 0.0;
  double record_ns_1t = 0.0;
};

struct MacroResults {
  double best_off = 0.0;  // req/s, telemetry disabled
  double best_on = 0.0;   // req/s, telemetry enabled
  double delta = 0.0;
  bool pass = true;
};

MicroResults RunMicro(bool csv, std::size_t iters) {
  telemetry::MetricRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("bench_counter");
  telemetry::Gauge* gauge = registry.GetGauge("bench_gauge");
  telemetry::AtomicHistogram* histogram =
      registry.GetHistogram("bench_seconds");
  std::atomic<std::uint64_t> shared_atomic{0};
  telemetry::FlightRecorder recorder(256);

  telemetry::RequestTrace proto;
  proto.op = telemetry::TraceOp::kLookup;
  proto.outcome = telemetry::TraceOutcome::kHit;
  proto.AddSpan(telemetry::TracePhase::kEmbed, 0.0, 1e-4);
  proto.AddSpan(telemetry::TracePhase::kAnnProbe, 1e-4, 2e-4);
  proto.AddSpan(telemetry::TracePhase::kJudger, 3e-4, 1e-4);
  proto.AddSpan(telemetry::TracePhase::kCommit, 4e-4, 1e-5);
  proto.SetQuery("what is the height of everest");

  struct Case {
    const char* name;
    std::function<void(std::size_t)> op;
  };
  const std::vector<Case> cases = {
      {"shared atomic fetch_add (baseline)",
       [&shared_atomic](std::size_t) {
         shared_atomic.fetch_add(1, std::memory_order_relaxed);
       }},
      {"Counter::Inc (16-way striped)",
       [counter](std::size_t) { counter->Inc(); }},
      {"Gauge::Add", [gauge](std::size_t) { gauge->Add(1.0); }},
      {"AtomicHistogram::Observe",
       [histogram](std::size_t i) {
         histogram->Observe(1e-4 * static_cast<double>((i & 1023) + 1));
       }},
      {"trace fill + FlightRecorder::Record",
       [&recorder, &proto](std::size_t i) {
         telemetry::RequestTrace trace = proto;
         trace.total = 1e-3 * static_cast<double>((i & 255) + 1);
         recorder.Record(trace);
       }},
  };

  std::cout << "=== telemetry instrument micro-costs (" << iters
            << " ops/thread) ===\n\n";
  MicroResults results;
  TextTable table({"operation", "1 thread (ns/op)", "8 threads (ns/op)"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const double ns1 = MeasureNsPerOp(1, iters, c.op);
    const double ns8 = MeasureNsPerOp(8, iters, c.op);
    switch (i) {
      case 0: results.shared_atomic_ns_8t = ns8; break;
      case 1:
        results.counter_ns_1t = ns1;
        results.counter_ns_8t = ns8;
        break;
      case 3: results.histogram_ns_1t = ns1; break;
      case 4: results.record_ns_1t = ns1; break;
      default: break;
    }
    table.AddRow({c.name, TextTable::Num(ns1, 1), TextTable::Num(ns8, 1)});
  }
  table.Print(std::cout, csv);
  std::cout << "\nexpected shape: the striped counter holds its 1-thread"
               " cost at 8 threads while the shared atomic degrades"
               " several-fold from cache-line ping-pong; Record stays"
               " O(100ns) — one CAS plus relaxed stores.\n\n";
  return results;
}

// ---------------------------------------------------------------------------
// Macro A/B: engine throughput with telemetry enabled vs disabled.

double RunEngineThroughput(const WorkloadBundle& bundle,
                           const HashedEmbedder& embedder,
                           const JudgerModel& judger,
                           std::size_t num_threads, bool telemetry_enabled) {
  serve::ConcurrentEngineOptions opts;
  opts.num_shards = 4;
  opts.cache.capacity_tokens = 0.4 * bundle.TotalKnowledgeTokens();
  opts.housekeeping_interval_sec = 0.0;
  serve::ConcurrentShardedEngine engine(&embedder, &judger, opts);
  engine.registry()->set_enabled(telemetry_enabled);

  std::vector<const std::string*> queries;
  for (const auto& task : bundle.tasks) {
    for (const auto& step : task.steps) queries.push_back(&step.query);
  }

  const auto& oracle = *bundle.oracle;
  const double t0 = NowSec();
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t i = tid; i < queries.size(); i += num_threads) {
        const std::string& query = *queries[i];
        if (engine.Lookup(query)) continue;
        InsertRequest req;
        req.key = query;
        req.value = oracle.ExpectedInfo(query);
        if (req.value.empty()) continue;
        req.staticity = oracle.Staticity(query);
        req.initial_frequency = 1;
        engine.Insert(std::move(req));
      }
    });
  }
  for (auto& t : pool) t.join();
  const double wall = NowSec() - t0;
  return wall > 0.0 ? static_cast<double>(queries.size()) / wall : 0.0;
}

MacroResults RunMacroAb(bool csv, std::size_t tasks, std::size_t threads,
                        int repeats) {
  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  HashedEmbedder embedder;
  embedder.FitIdf(bundle.AllQueries());
  JudgerModel judger(bundle.oracle.get());

  std::cout << "=== enabled-vs-disabled engine throughput (Musique, "
            << tasks << " tasks, " << threads << " threads, best of "
            << repeats << ") ===\n\n";

  // Interleave the arms and keep the best run of each: adjacent runs see
  // the same thermal/noise environment, and max-of-N is the standard way
  // to strip scheduler noise from a short throughput measurement.
  double best_on = 0.0, best_off = 0.0;
  for (int r = 0; r < repeats; ++r) {
    best_off = std::max(
        best_off, RunEngineThroughput(bundle, embedder, judger, threads,
                                      /*telemetry_enabled=*/false));
    best_on = std::max(
        best_on, RunEngineThroughput(bundle, embedder, judger, threads,
                                     /*telemetry_enabled=*/true));
  }

  MacroResults results;
  results.best_off = best_off;
  results.best_on = best_on;
  results.delta = best_off > 0.0 ? (best_off - best_on) / best_off : 0.0;
  constexpr double kMaxDelta = 0.05;
  results.pass = results.delta < kMaxDelta;

  TextTable table({"arm", "throughput (req/s)"});
  table.AddRow({"telemetry disabled", TextTable::Num(best_off)});
  table.AddRow({"telemetry enabled", TextTable::Num(best_on)});
  table.Print(std::cout, csv);
  std::cout << "\noverhead: " << TextTable::Percent(results.delta)
            << " (budget " << TextTable::Percent(kMaxDelta) << ") — "
            << (results.pass ? "PASS" : "FAIL")
            << "\nexpected shape: the instrumented path adds a handful of"
               " relaxed atomic ops per request against an ANN probe +"
               " judger costing tens of microseconds, so the delta sits"
               " in the noise floor.\n";
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto iters =
      static_cast<std::size_t>(flags.GetInt("iters", 2000000));
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 400));
  const auto threads = static_cast<std::size_t>(flags.GetInt("threads", 8));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  const bool json = flags.GetBool("json", false);

  MicroResults micro;
  if (!flags.GetBool("macro-only", false)) micro = RunMicro(csv, iters);
  MacroResults macro;
  const bool macro_ran = !flags.GetBool("micro-only", false);
  if (macro_ran) macro = RunMacroAb(csv, tasks, threads, repeats);

  // --json: write BENCH_telemetry.json for the CI bench-diff leg.  The ns
  // and throughput keys diff inside scripts/bench_diff.py's wide perf
  // band; the echoed config keys diff tightly.  The 5% macro budget is
  // advisory here — the diff against the committed baseline is the gate.
  if (json) {
    std::ofstream out("BENCH_telemetry.json");
    out << "{\n  \"benchmark\": \"telemetry\",\n  \"iters\": " << iters
        << ",\n  \"tasks\": " << tasks << ",\n  \"threads\": " << threads
        << ",\n  \"repeats\": " << repeats
        << ",\n  \"shared_atomic_ns_per_op_8t\": " << micro.shared_atomic_ns_8t
        << ",\n  \"counter_inc_ns_per_op_1t\": " << micro.counter_ns_1t
        << ",\n  \"counter_inc_ns_per_op_8t\": " << micro.counter_ns_8t
        << ",\n  \"histogram_observe_ns_per_op_1t\": " << micro.histogram_ns_1t
        << ",\n  \"recorder_record_ns_per_op_1t\": " << micro.record_ns_1t
        << ",\n  \"throughput_rps_disabled\": " << macro.best_off
        << ",\n  \"throughput_rps_enabled\": " << macro.best_on << "\n}\n";
    std::cout << "wrote BENCH_telemetry.json\n";
    return 0;
  }
  return !macro_ran || macro.pass ? 0 : 1;
}
