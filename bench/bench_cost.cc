// Table 5: cost and performance across configurations under peak load on
// the Musique dataset: Agent_vanilla, Cortex without GPU sharing (judger on
// a dedicated second GPU), and full co-located Cortex.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  std::cout << "=== Table 5: cost and performance across configurations"
               " (peak load) ===\n\n";

  struct Variant {
    std::string label;
    System system;
    DeploymentConfig gpu;
  };
  const std::vector<Variant> variants = {
      {"Agent_vanilla", System::kVanilla, DeploymentConfig::AgentOnly()},
      {"Cortex w/o Sharing", System::kCortex,
       DeploymentConfig::DedicatedTwoGpu()},
      {"Cortex", System::kCortex, DeploymentConfig::Colocated80_20()},
  };

  TextTable table({"Metric", variants[0].label, variants[1].label,
                   variants[2].label});
  std::vector<ExperimentResult> results;
  for (const auto& variant : variants) {
    ExperimentConfig config;
    config.system = variant.system;
    config.cache_ratio = 0.4;
    config.gpu = variant.gpu;
    config.driver = OpenLoop(8.0);  // peak load, as in §6.5
    results.push_back(RunExperiment(bundle, config));
  }

  auto row = [&](const std::string& metric, auto getter, int precision) {
    std::vector<std::string> cells = {metric};
    for (const auto& r : results) {
      cells.push_back(TextTable::Num(getter(r), precision));
    }
    table.AddRow(cells);
  };
  row("API Cost ($)", [](const auto& r) { return r.api_cost_dollars; }, 2);
  row("GPU Cost ($)", [](const auto& r) { return r.gpu_cost_dollars; }, 2);
  row("Total Cost ($)",
      [](const auto& r) { return r.api_cost_dollars + r.gpu_cost_dollars; },
      2);
  row("Thpt. (req/s)", [](const auto& r) { return r.metrics.Throughput(); },
      2);
  row("Thpt./Cost (req/s/$)",
      [](const auto& r) { return r.ThroughputPerDollar(); }, 3);
  table.Print(std::cout, csv);

  std::cout << "\ngpus: " << results[0].num_gpus << " / "
            << results[1].num_gpus << " / " << results[2].num_gpus
            << "; paper shape: co-location keeps >=95% of two-GPU"
               " throughput while halving GPU cost and cutting API cost"
               " >90% -> ~6x throughput per dollar vs vanilla.\n";
  return 0;
}
