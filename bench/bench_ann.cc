// ANN-substrate ablations called out in DESIGN.md:
//   * index family comparison (Flat vs IVF vs HNSW): recall@k, distance
//     computations, and end-to-end cache hit rate when each backs Sine;
//   * tau_sim sweep: the §4.2 trade-off between stage-1 recall and stage-2
//     judger workload.
//
// Flags:
//   --json   also write BENCH_ann.json (the deterministic recall/work
//            ablation rows) for the CI bench-diff flywheel
#include <chrono>
#include <fstream>
#include <iostream>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/ivf_index.h"
#include "ann/pq.h"
#include "bench_common.h"
#include "embedding/simd_kernels.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

namespace {

std::unique_ptr<VectorIndex> Make(IndexType type, std::size_t dim) {
  return MakeIndex(type, dim);
}

// Queries/sec over repeated sweeps of `queries` until ~`min_ms` of wall
// time; also collects the top-5 id stream for cross-variant comparison.
double QueriesPerSec(const VectorIndex& idx, const std::vector<Vector>& queries,
                     double min_ms, std::vector<VectorId>& topk_ids) {
  topk_ids.clear();
  for (const auto& q : queries) {
    for (const auto& r : idx.Search(q, 5, -1.0)) topk_ids.push_back(r.id);
  }
  const auto start = std::chrono::steady_clock::now();
  std::size_t done = 0;
  double elapsed = 0.0;
  do {
    for (const auto& q : queries) {
      if (idx.Search(q, 5, -1.0).empty()) std::abort();  // keep the work live
    }
    done += queries.size();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_ms / 1e3);
  return static_cast<double>(done) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);

  std::cout << "kernel variant: " << simd::VariantName(simd::ActiveVariant())
            << " (pin with CORTEX_SIMD=scalar|avx2|avx512|neon)\n\n";

  // --- Recall/work comparison on embedded workload queries ---
  std::cout << "=== ANN index ablation: recall@5 vs distance computations"
               " ===\n";
  auto profile = SearchDatasetProfile::HotpotQa();
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);
  HashedEmbedder embedder;

  // Corpus: one embedding per topic (first paraphrase); queries: another
  // paraphrase of each topic.
  std::vector<Vector> corpus, queries;
  for (const auto& t : bundle.universe->topics()) {
    corpus.push_back(embedder.Embed(t.paraphrases[0]));
    queries.push_back(embedder.Embed(t.paraphrases[3]));
  }

  FlatIndex truth(embedder.dimension());
  for (std::size_t i = 0; i < corpus.size(); ++i) truth.Add(i, corpus[i]);

  struct AblationRow {
    const char* index;
    double recall, comps, self_hit;
  };
  std::vector<AblationRow> ablation_rows;
  TextTable ann_table({"index", "recall@5 vs flat", "dist comps / query",
                       "self-hit rate"});
  for (const IndexType type :
       {IndexType::kFlat, IndexType::kIvf, IndexType::kHnsw,
        IndexType::kPq}) {
    auto idx = Make(type, embedder.dimension());
    for (std::size_t i = 0; i < corpus.size(); ++i) idx->Add(i, corpus[i]);
    int found = 0, total = 0, self_hits = 0;
    const auto comps_before = idx->distance_computations();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto exact = truth.Search(queries[i], 5, -1.0);
      const auto approx = idx->Search(queries[i], 5, -1.0);
      for (const auto& e : exact) {
        ++total;
        for (const auto& a : approx) {
          if (a.id == e.id) {
            ++found;
            break;
          }
        }
      }
      if (!approx.empty() && approx[0].id == i) ++self_hits;
    }
    const double comps =
        static_cast<double>(idx->distance_computations() - comps_before) /
        static_cast<double>(queries.size());
    const char* name = type == IndexType::kFlat  ? "flat"
                       : type == IndexType::kIvf ? "ivf"
                       : type == IndexType::kHnsw ? "hnsw"
                                                  : "pq";
    ablation_rows.push_back({name, static_cast<double>(found) / total, comps,
                             static_cast<double>(self_hits) /
                                 static_cast<double>(queries.size())});
    ann_table.AddRow({name,
                      TextTable::Percent(static_cast<double>(found) / total),
                      TextTable::Num(comps, 0),
                      TextTable::Percent(static_cast<double>(self_hits) /
                                         queries.size())});
  }
  ann_table.Print(std::cout, csv);
  std::cout << '\n';

  // Deterministic rows only — recall and distance-computation counts are
  // machine-independent, so the baseline diffs tightly in CI.
  if (flags.GetBool("json", false)) {
    std::ofstream out("BENCH_ann.json");
    out << "{\n  \"benchmark\": \"ann_ablation\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < ablation_rows.size(); ++i) {
      const auto& r = ablation_rows[i];
      out << "    {\"index\": \"" << r.index << "\", \"recall_at_5\": "
          << r.recall << ", \"dist_comps_per_query\": " << r.comps
          << ", \"self_hit_rate\": " << r.self_hit << "}"
          << (i + 1 < ablation_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_ann.json\n";
  }

  // --- Kernel dispatch A/B: scan/probe throughput, scalar vs native ---
  // Same index, same queries, only the kernel variant differs.  Top-k ids
  // must be identical — the SIMD kernels change speed, not answers.
  std::cout << "=== Kernel dispatch A/B (scalar vs "
            << simd::VariantName(simd::ActiveVariant()) << ") ===\n";
  const auto native = simd::ActiveVariant();
  TextTable ab({"index", "scalar q/s", "native q/s", "speedup",
                "top-k identical"});
  for (const IndexType type :
       {IndexType::kFlat, IndexType::kIvf, IndexType::kHnsw}) {
    auto idx = Make(type, embedder.dimension());
    for (std::size_t i = 0; i < corpus.size(); ++i) idx->Add(i, corpus[i]);
    std::vector<VectorId> scalar_ids, native_ids;
    simd::ForceVariant(simd::Variant::kScalar);
    const double scalar_qps = QueriesPerSec(*idx, queries, 150.0, scalar_ids);
    simd::ForceVariant(native);
    const double native_qps = QueriesPerSec(*idx, queries, 150.0, native_ids);
    const char* name = type == IndexType::kFlat  ? "flat"
                       : type == IndexType::kIvf ? "ivf"
                                                 : "hnsw";
    ab.AddRow({name, TextTable::Num(scalar_qps, 0),
               TextTable::Num(native_qps, 0),
               TextTable::Num(native_qps / scalar_qps, 2) + "x",
               scalar_ids == native_ids ? "yes" : "NO"});
  }
  ab.Print(std::cout, csv);
  std::cout << '\n';

  // --- End-to-end: each index type backing the full engine ---
  std::cout << "=== End-to-end hit rate by index backend ===\n";
  auto small = SearchDatasetProfile::HotpotQa();
  small.num_tasks = 600;
  const WorkloadBundle e2e = BuildSkewedSearchWorkload(small);
  TextTable backend({"index", "throughput (req/s)", "hit rate",
                     "mean cache check (s)"});
  for (const IndexType type :
       {IndexType::kFlat, IndexType::kIvf, IndexType::kHnsw,
        IndexType::kPq}) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.5;
    config.engine.index_type = type;
    config.driver = OpenLoop(3.0);
    const auto r = RunExperiment(e2e, config);
    const char* name = type == IndexType::kFlat  ? "flat"
                       : type == IndexType::kIvf ? "ivf"
                       : type == IndexType::kHnsw ? "hnsw"
                                                  : "pq";
    backend.AddRow({name, TextTable::Num(r.metrics.Throughput()),
                    TextTable::Percent(r.metrics.CacheHitRate()),
                    TextTable::Num(r.metrics.MeanCacheCheckSeconds(), 3)});
  }
  backend.Print(std::cout, csv);
  std::cout << '\n';

  // --- tau_sim sweep: stage-1 recall vs judger workload (§4.2) ---
  std::cout << "=== tau_sim sweep: candidate recall vs judger load ===\n";
  TextTable sweep({"tau_sim", "hit rate", "judger calls / lookup",
                   "accuracy"});
  for (const double tau : {0.25, 0.38, 0.5, 0.62, 0.75}) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.5;
    config.engine.cache.sine.tau_sim = tau;
    config.driver = OpenLoop(1.5);
    // Count judger calls through the recalibrator-free engine telemetry:
    // approximate via cache-check time is indirect, so re-measure directly.
    HashedEmbedder emb;
    JudgerModel judger(e2e.oracle.get());
    CortexEngineOptions opts = config.engine;
    opts.cache.capacity_tokens = 0.5 * e2e.TotalKnowledgeTokens();
    opts.recalibration_enabled = false;
    CortexEngine engine(&emb, &judger, opts);
    std::size_t judger_calls = 0, lookups = 0, hits = 0, wrong = 0;
    double now = 0.0;
    for (const auto& task : e2e.tasks) {
      for (const auto& step : task.steps) {
        now += 0.4;
        ++lookups;
        auto out = engine.Lookup(step.query, now);
        judger_calls += out.cache.sine.judger_calls;
        if (out.cache.hit) {
          ++hits;
          if (!e2e.oracle->InfoCorrect(step.query, out.cache.hit->value)) {
            ++wrong;
          }
        } else {
          engine.InsertFetched(step.query, step.expected_info,
                               std::move(out.cache.query_embedding), 0.4,
                               0.005, now);
        }
      }
    }
    sweep.AddRow({TextTable::Num(tau, 2),
                  TextTable::Percent(static_cast<double>(hits) / lookups),
                  TextTable::Num(static_cast<double>(judger_calls) / lookups,
                                 2),
                  TextTable::Percent(
                      hits ? 1.0 - static_cast<double>(wrong) / hits : 1.0)});
  }
  sweep.Print(std::cout, csv);
  std::cout << "(lower tau_sim: more candidates reach the judger — higher"
               " recall, more validation work; higher tau_sim discards"
               " correct matches early)\n";
  return 0;
}
