// §6.7 recalibration overhead: throughput with vs without periodic
// threshold recalibration (paper: ~2% cost), plus a P_target sweep showing
// the precision/hit-rate lever and behaviour under judger drift.
#include <iostream>

#include "bench_common.h"
#include "embedding/hashed_embedder.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));

  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  std::cout << "=== §6.7: recalibration overhead (HotpotQA) ===\n\n";
  TextTable overhead({"configuration", "throughput (req/s)", "hit rate",
                      "accuracy", "rounds", "final tau_lsm"});
  double with_recal = 0.0, without_recal = 0.0;
  for (const bool enabled : {true, false}) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.4;
    config.recalibration_enabled = enabled;
    config.engine.recalibration_interval_sec = 30.0;
    // Larger per-round samples keep the precision curve from whipsawing on
    // a couple of labels.
    config.engine.recalibration.samples_per_round = 10;
    // Closed loop without a hard quota: recalibration's cost is the extra
    // GPU work and ground-truth fetch latency, not stolen quota tokens —
    // the regime where the paper measures its ~2%.
    config.driver = ClosedLoop(8);
    config.service = RemoteDataService::GoogleSearchApi();
    config.service.rate_limit_per_min = -1.0;
    const auto r = RunExperiment(bundle, config);
    (enabled ? with_recal : without_recal) = r.metrics.Throughput();
    overhead.AddRow({enabled ? "with recalibration" : "without",
                     TextTable::Num(r.metrics.Throughput()),
                     TextTable::Percent(r.metrics.CacheHitRate()),
                     TextTable::Percent(r.metrics.Accuracy()),
                     std::to_string(r.recalibrations),
                     TextTable::Num(r.final_tau_lsm, 3)});
  }
  overhead.Print(std::cout, csv);
  std::cout << "net throughput effect: "
            << TextTable::Percent(with_recal / without_recal - 1.0)
            << " (paper reports a bounded ~2% cost; the net sign depends on"
               " whether the recalibrated threshold recovers more hits than"
               " the GT fetches and validation scoring consume)\n\n";

  std::cout << "=== Ablation: target precision sweep ===\n";
  TextTable sweep({"P_target", "hit rate", "accuracy", "final tau_lsm"});
  for (const double target : {0.90, 0.97, 0.995, 0.999}) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.4;
    config.engine.recalibration.target_precision = target;
    config.engine.recalibration_interval_sec = 20.0;
    config.driver = OpenLoop(1.5);  // lighter load for clean accuracy
    const auto r = RunExperiment(bundle, config);
    sweep.AddRow({TextTable::Num(target, 3),
                  TextTable::Percent(r.metrics.CacheHitRate()),
                  TextTable::Percent(r.metrics.Accuracy()),
                  TextTable::Num(r.final_tau_lsm, 3)});
  }
  sweep.Print(std::cout, csv);
  std::cout << "(stricter targets push tau_lsm up: fewer hits, fewer false"
               " positives — Algorithm 1's dial)\n\n";

  // --- Ablation: judger fine-tuning on the annotated set (§5) ---
  std::cout << "=== Ablation: judger fine-tuning on the annotated set ===\n";
  auto trapy = SearchDatasetProfile::StrategyQa();  // highest trap fraction
  trapy.num_tasks = tasks;
  const WorkloadBundle fb = BuildSkewedSearchWorkload(trapy);
  TextTable ft({"judger", "hit rate", "false hits / hits",
                "judger separation (mu+ - mu-)"});
  for (const bool finetuned : {false, true}) {
    HashedEmbedder emb;
    const auto corpus = fb.AllQueries();
    emb.FitIdf(corpus);
    JudgerModel judger(fb.oracle.get());
    if (finetuned) judger.Finetune(5000);  // paper: tune on annotations
    CortexEngineOptions opts;
    opts.cache.capacity_tokens = 0.5 * fb.TotalKnowledgeTokens();
    opts.recalibration_enabled = false;
    CortexEngine engine(&emb, &judger, opts);
    std::size_t hits = 0, wrong = 0, lookups = 0;
    double now = 0.0;
    for (const auto& task : fb.tasks) {
      for (const auto& step : task.steps) {
        now += 0.4;
        ++lookups;
        auto out = engine.Lookup(step.query, now);
        if (out.cache.hit) {
          ++hits;
          if (!fb.oracle->InfoCorrect(step.query, out.cache.hit->value)) {
            ++wrong;
          }
        } else {
          engine.InsertFetched(step.query, step.expected_info,
                               std::move(out.cache.query_embedding), 0.4,
                               0.005, now);
        }
      }
    }
    ft.AddRow({finetuned ? "fine-tuned" : "base",
               TextTable::Percent(static_cast<double>(hits) / lookups),
               TextTable::Percent(hits ? static_cast<double>(wrong) / hits
                                       : 0.0,
                                  2),
               TextTable::Num(judger.options().mu_equivalent -
                                  judger.options().mu_different,
                              2)});
  }
  ft.Print(std::cout, csv);
  std::cout << "(a tuned judger widens its margins: fewer false accepts AND"
               " fewer false rejects — the paper's pluggable-judger"
               " argument)\n";
  return 0;
}
