// Figure 13: generation quality (Exact-Match accuracy) with and without
// caching.  The naive similarity-only cache (Agent_ANN) degrades accuracy;
// the full system with the semantic judger matches the non-cached baseline.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 800));

  std::cout << "=== Figure 13: EM accuracy — Agent_vanilla vs Agent_Cortex"
               " vs Agent_ANN (no judger) ===\n\n";

  // Low offered load so correctness is not confounded by rate limiting.
  const DriverOptions low_load = OpenLoop(0.8);

  std::vector<SearchDatasetProfile> profiles =
      SearchDatasetProfile::AllFigure7();
  profiles.push_back(SearchDatasetProfile::StrategyQa());

  TextTable table({"dataset", "Agent_vanilla", "Agent_Cortex",
                   "Agent_ANN (no judger)", "hit rate (Cortex)",
                   "hit rate (ANN)"});
  for (auto profile : profiles) {
    profile.num_tasks = tasks;
    const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);
    double accuracy[3] = {0, 0, 0};
    double hits[3] = {0, 0, 0};
    const System systems[3] = {System::kVanilla, System::kCortex,
                               System::kAnnOnly};
    for (int i = 0; i < 3; ++i) {
      ExperimentConfig config;
      config.system = systems[i];
      config.cache_ratio = 0.6;
      config.driver = low_load;
      const auto r = RunExperiment(bundle, config);
      accuracy[i] = r.metrics.Accuracy();
      hits[i] = r.metrics.CacheHitRate();
    }
    table.AddRow({bundle.name, TextTable::Num(accuracy[0], 3),
                  TextTable::Num(accuracy[1], 3),
                  TextTable::Num(accuracy[2], 3),
                  TextTable::Percent(hits[1]), TextTable::Percent(hits[2])});
  }
  table.Print(std::cout, csv);
  std::cout << "\npaper shape: Agent_Cortex matches Agent_vanilla on every"
               " dataset; the judger-less ablation drops (e.g. StrategyQA"
               " 0.69 vs 0.79) because vector similarity returns related"
               " but wrong results.\n";
  return 0;
}
