// Google-benchmark microbenchmarks for the hot data-plane operations: text
// embedding, ANN search across index families and sizes, the two-stage
// Sine lookup, and cache insert/evict.  These bound the real CPU cost of a
// cache check, complementing the simulated latencies used in the
// system-level benches.
#include <benchmark/benchmark.h>

#include <sstream>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/ivf_index.h"
#include "ann/pq.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "embedding/hashed_embedder.h"
#include "workload/workloads.h"

namespace cortex {
namespace {

const WorkloadBundle& SharedBundle() {
  static const WorkloadBundle bundle = [] {
    auto profile = SearchDatasetProfile::HotpotQa();
    profile.num_tasks = 200;
    return BuildSkewedSearchWorkload(profile);
  }();
  return bundle;
}

void BM_EmbedQuery(benchmark::State& state) {
  const auto& bundle = SharedBundle();
  HashedEmbedder embedder;
  std::size_t i = 0;
  const auto& topics = bundle.universe->topics();
  for (auto _ : state) {
    const auto& t = topics[i++ % topics.size()];
    benchmark::DoNotOptimize(embedder.Embed(t.paraphrases[0]));
  }
}
BENCHMARK(BM_EmbedQuery);

template <typename IndexT>
std::unique_ptr<VectorIndex> MakeSized(std::size_t dim) {
  return std::make_unique<IndexT>(dim);
}

void RunSearchBench(benchmark::State& state,
                    std::unique_ptr<VectorIndex> index) {
  HashedEmbedder embedder;
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(embedder.dimension());
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    Normalize(v);
    index->Add(i, v);
  }
  Vector q(embedder.dimension());
  for (auto& x : q) x = static_cast<float>(rng.Normal());
  Normalize(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Search(q, 6, 0.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_FlatSearch(benchmark::State& state) {
  RunSearchBench(state, MakeSized<FlatIndex>(256));
}
void BM_IvfSearch(benchmark::State& state) {
  RunSearchBench(state, std::make_unique<IvfIndex>(256));
}
void BM_HnswSearch(benchmark::State& state) {
  RunSearchBench(state, std::make_unique<HnswIndex>(256));
}
BENCHMARK(BM_FlatSearch)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_IvfSearch)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_HnswSearch)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EngineLookupHit(benchmark::State& state) {
  const auto& bundle = SharedBundle();
  HashedEmbedder embedder;
  JudgerModel judger(bundle.oracle.get());
  CortexEngineOptions opts;
  opts.cache.capacity_tokens = 1e9;
  opts.recalibration_enabled = false;
  CortexEngine engine(&embedder, &judger, opts);
  double now = 0.0;
  for (const auto& t : bundle.universe->topics()) {
    engine.InsertFetched(t.paraphrases[0], t.answer, std::nullopt, 0.4,
                         0.005, now += 1.0);
  }
  std::size_t i = 0;
  const auto& topics = bundle.universe->topics();
  for (auto _ : state) {
    const auto& t = topics[i++ % topics.size()];
    benchmark::DoNotOptimize(
        engine.Lookup(t.paraphrases[2], now += 1.0));
  }
}
BENCHMARK(BM_EngineLookupHit);

void BM_CacheInsertWithEviction(benchmark::State& state) {
  const auto& bundle = SharedBundle();
  HashedEmbedder embedder;
  JudgerModel judger(bundle.oracle.get());
  CortexEngineOptions opts;
  // Tight capacity: every insert evicts.
  opts.cache.capacity_tokens = 0.1 * bundle.TotalKnowledgeTokens();
  opts.recalibration_enabled = false;
  opts.prefetch_enabled = false;
  CortexEngine engine(&embedder, &judger, opts);
  double now = 0.0;
  std::size_t i = 0;
  const auto& topics = bundle.universe->topics();
  for (auto _ : state) {
    const auto& t = topics[i++ % topics.size()];
    benchmark::DoNotOptimize(engine.InsertFetched(
        t.paraphrases[i % t.paraphrases.size()], t.answer, std::nullopt,
        0.4, 0.005, now += 1.0));
  }
}
BENCHMARK(BM_CacheInsertWithEviction);

void BM_JudgerScore(benchmark::State& state) {
  const auto& bundle = SharedBundle();
  JudgerModel judger(bundle.oracle.get());
  const auto& topics = bundle.universe->topics();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = topics[i % topics.size()];
    const auto& b = topics[(i + 1) % topics.size()];
    ++i;
    JudgeRequest req{a.paraphrases[0], b.paraphrases[0], b.answer, 0.7};
    benchmark::DoNotOptimize(judger.Judge(req));
  }
}
BENCHMARK(BM_JudgerScore);

void BM_PqSearch(benchmark::State& state) {
  RunSearchBench(state, std::make_unique<PqIndex>(256));
}
BENCHMARK(BM_PqSearch)->Arg(1024)->Arg(4096);

void BM_PqEncode(benchmark::State& state) {
  Rng rng(2);
  PqOptions opts;
  ProductQuantizer pq(256, opts);
  std::vector<float> data;
  for (int i = 0; i < 512; ++i) {
    Vector v(256);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    Normalize(v);
    data.insert(data.end(), v.begin(), v.end());
  }
  pq.Train(data, 512);
  const std::span<const float> row(data.data(), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pq.Encode(row));
  }
}
BENCHMARK(BM_PqEncode);

void BM_SnapshotSaveLoad(benchmark::State& state) {
  const auto& bundle = SharedBundle();
  HashedEmbedder embedder;
  JudgerModel judger(bundle.oracle.get());
  SemanticCacheOptions opts;
  opts.capacity_tokens = 1e9;
  SemanticCache cache(&embedder,
                      std::make_unique<FlatIndex>(embedder.dimension()),
                      &judger, std::make_unique<LcfuPolicy>(), opts);
  double now = 0.0;
  for (const auto& t : bundle.universe->topics()) {
    InsertRequest req;
    req.key = t.paraphrases[0];
    req.value = t.answer;
    req.staticity = t.staticity;
    cache.Insert(std::move(req), now += 1.0);
  }
  for (auto _ : state) {
    std::stringstream stream;
    SaveCacheSnapshot(cache, stream);
    SemanticCache fresh(&embedder,
                        std::make_unique<FlatIndex>(embedder.dimension()),
                        &judger, std::make_unique<LcfuPolicy>(), opts);
    benchmark::DoNotOptimize(LoadCacheSnapshot(fresh, stream, now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cache.size()));
}
BENCHMARK(BM_SnapshotSaveLoad);

}  // namespace
}  // namespace cortex

BENCHMARK_MAIN();
