// Figure 1c + Figure 11: per-request latency anatomy.
//
// Part 1 (Fig. 1c): for the vanilla search agent, what fraction of each
// request is spent on external retrieval vs model inference — the paper
// measures 40-50% retrieval, i.e. the GPU idles for almost half the time.
//
// Part 2 (Fig. 11): single-request breakdown at low concurrency comparing
// Agent_vanilla and Agent_Cortex: the 0.48 s remote fetch is replaced by a
// ~0.05 s local cache check.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

namespace {

WorkloadBundle SingleHopBundle(std::size_t tasks) {
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  profile.multi_hop_prob = 0.0;  // Fig. 11 is one retrieval per request
  return BuildSkewedSearchWorkload(profile);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 400));

  const WorkloadBundle bundle = SingleHopBundle(tasks);
  // Low concurrency isolates pure request latency from queueing effects.
  const DriverOptions low_load = OpenLoop(0.4);

  ExperimentConfig vanilla;
  vanilla.system = System::kVanilla;
  vanilla.driver = low_load;
  const auto v = RunExperiment(bundle, vanilla);

  ExperimentConfig cortex;
  cortex.system = System::kCortex;
  cortex.cache_ratio = 0.6;
  cortex.driver = low_load;
  const auto c = RunExperiment(bundle, cortex);

  std::cout << "=== Figure 1c: Search-R1 latency breakdown (vanilla agent)"
               " ===\n";
  const double v_total = v.metrics.MeanAgentSeconds() +
                         v.metrics.MeanToolSeconds() +
                         v.metrics.MeanCacheCheckSeconds();
  TextTable fig1c({"component", "seconds/request", "share"});
  fig1c.AddRow({"agent LLM inference",
                TextTable::Num(v.metrics.MeanAgentSeconds(), 3),
                TextTable::Percent(v.metrics.MeanAgentSeconds() / v_total)});
  fig1c.AddRow({"external data retrieval",
                TextTable::Num(v.metrics.MeanToolSeconds(), 3),
                TextTable::Percent(v.metrics.MeanToolSeconds() / v_total)});
  fig1c.Print(std::cout, csv);
  std::cout << "(paper: retrieval is ~40-50% of execution time; GPU"
               " utilisation ~50%)\n\n";

  std::cout << "=== Figure 11: per-request end-to-end breakdown ===\n";
  TextTable fig11({"component", "Agent_vanilla (s)", "Agent_Cortex (s)"});
  fig11.AddRow({"agent inference",
                TextTable::Num(v.metrics.MeanAgentSeconds(), 3),
                TextTable::Num(c.metrics.MeanAgentSeconds(), 3)});
  fig11.AddRow({"cache retrieval + judger", "-",
                TextTable::Num(c.metrics.MeanCacheCheckSeconds(), 3)});
  fig11.AddRow({"external retrieval",
                TextTable::Num(v.metrics.MeanToolSeconds(), 3),
                TextTable::Num(c.metrics.MeanToolSeconds(), 3)});
  fig11.AddRow({"total request latency",
                TextTable::Num(v.metrics.MeanLatency(), 3),
                TextTable::Num(c.metrics.MeanLatency(), 3)});
  fig11.Print(std::cout, csv);
  std::cout << "cache hit rate during Cortex run: "
            << TextTable::Percent(c.metrics.CacheHitRate())
            << "\n(paper: 1.08s -> 0.61s total; 0.48s fetch replaced by"
               " 0.02s cache retrieval + 0.03s judger validation)\n";
  return 0;
}
