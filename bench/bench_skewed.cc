// Figure 7: end-to-end agent serving on the four skewed search datasets
// (Zilliz-GPT, HotpotQA, Musique, 2Wiki) under varying cache-size ratio:
// throughput (req/s), cache hit rate, and mean latency per system.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));
  const double rate = flags.GetDouble("rate", 6.0);

  std::cout << "=== Figure 7: skewed search workloads, zipf-0.99 popularity"
               " ===\n"
            << "offered load " << rate << " req/s, " << tasks
            << " tasks per dataset\n\n";

  const std::vector<double> ratios = {0.1, 0.2, 0.4, 0.6, 0.8};
  for (auto profile : SearchDatasetProfile::AllFigure7()) {
    profile.num_tasks = tasks;
    const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);
    TextTable table({"cache ratio", "system", "throughput (req/s)",
                     "hit rate", "mean latency (s)", "p99 (s)"});
    for (const double ratio : ratios) {
      for (const System system :
           {System::kVanilla, System::kExact, System::kCortex}) {
        if (system == System::kVanilla && ratio != ratios.front()) {
          continue;  // no cache: one row is enough
        }
        ExperimentConfig config;
        config.system = system;
        config.cache_ratio = ratio;
        config.driver = OpenLoop(rate);
        const auto r = RunExperiment(bundle, config);
        table.AddRow({TextTable::Num(ratio, 1), SystemName(system),
                      TextTable::Num(r.metrics.Throughput()),
                      TextTable::Percent(r.metrics.CacheHitRate()),
                      TextTable::Num(r.metrics.MeanLatency(), 2),
                      TextTable::Num(r.metrics.P99Latency(), 1)});
      }
    }
    std::cout << "--- dataset: " << bundle.name << " ---\n";
    table.Print(std::cout, csv);
    std::cout << '\n';
  }
  std::cout << "paper shape: Cortex sustains high hit rates (>85% at large"
               " ratios) vs <20% for exact matching, up to ~3.6x throughput"
               " and ~4x latency reduction.\n";
  return 0;
}
