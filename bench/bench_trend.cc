// Figure 8: end-to-end serving on the trend-driven (bursty) workload under
// varying cache ratios.  The staticity-aware LCFU policy self-cleans after
// each spike, which is what keeps the hit rate high with small caches.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);

  TrendProfile profile;
  profile.duration_sec = flags.GetDouble("duration", 600.0);
  const WorkloadBundle bundle = BuildTrendWorkload(profile);
  std::cout << "=== Figure 8: trend-driven workload (" << bundle.tasks.size()
            << " tasks over " << profile.duration_sec << "s, "
            << profile.num_trend_topics << " spikes) ===\n\n";

  TextTable table({"cache ratio", "system", "throughput (req/s)", "hit rate",
                   "mean latency (s)", "prefetches", "evictions"});
  for (const double ratio : {0.1, 0.2, 0.3, 0.5}) {
    for (const System system :
         {System::kVanilla, System::kExact, System::kCortex}) {
      if (system == System::kVanilla && ratio != 0.1) continue;
      ExperimentConfig config;
      config.system = system;
      config.cache_ratio = ratio;
      // Arrivals come from the trace itself (bundle.arrivals).
      const auto r = RunExperiment(bundle, config);
      table.AddRow({TextTable::Num(ratio, 1), SystemName(system),
                    TextTable::Num(r.metrics.Throughput()),
                    TextTable::Percent(r.metrics.CacheHitRate()),
                    TextTable::Num(r.metrics.MeanLatency(), 2),
                    std::to_string(r.prefetches),
                    std::to_string(r.evictions)});
    }
  }
  table.Print(std::cout, csv);
  std::cout << "\npaper shape: up to ~3.8x throughput over Agent_vanilla"
               " with ~95% hit rate; LCFU's staticity term evicts stale"
               " trend content to absorb the next wave.\n";
  return 0;
}
