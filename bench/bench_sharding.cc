// Sharded regional cache tier (DESIGN.md extension; the paper's Fig. 4
// deployment has several agent applications sharing one Cortex tier).
// Sweeps the shard count: per-lookup ANN work shrinks with shards while
// IDF-anchored routing keeps paraphrases together, so the hit rate barely
// moves.
#include <iostream>

#include "bench_common.h"
#include "core/sharded_cache.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));

  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  std::cout << "=== Sharded cache tier: shard-count sweep (HotpotQA replay,"
               " cache ratio 0.5) ===\n\n";
  TextTable table({"shards", "hit rate", "ANN dist comps / lookup",
                   "resident SEs", "shard-stable topics"});
  for (const std::size_t shards : {1, 2, 4, 8, 16}) {
    HashedEmbedder embedder;
    const auto corpus = bundle.AllQueries();
    embedder.FitIdf(corpus);
    JudgerModel judger(bundle.oracle.get());
    ShardedCacheOptions opts;
    opts.num_shards = shards;
    opts.cache.capacity_tokens = 0.5 * bundle.TotalKnowledgeTokens();
    ShardedSemanticCache cache(&embedder, &judger, opts);

    std::size_t hits = 0, lookups = 0;
    double now = 0.0;
    for (const auto& task : bundle.tasks) {
      for (const auto& step : task.steps) {
        now += 0.4;
        ++lookups;
        auto out = cache.Lookup(step.query, now);
        if (out.hit) {
          ++hits;
        } else {
          InsertRequest req;
          req.key = step.query;
          req.value = step.expected_info;
          req.embedding = std::move(out.query_embedding);
          req.staticity = bundle.oracle->Staticity(step.query);
          req.retrieval_latency_sec = 0.4;
          req.retrieval_cost_dollars = 0.005;
          req.initial_frequency = 1;
          cache.Insert(std::move(req), now);
        }
      }
    }

    std::uint64_t distcomps = 0;
    for (std::size_t i = 0; i < shards; ++i) {
      distcomps += cache.shard(i).sine().index().distance_computations();
    }

    // Routing stability: fraction of topics whose paraphrases all land on
    // one shard.
    std::size_t stable = 0;
    for (const auto& t : bundle.universe->topics()) {
      const auto anchor = cache.ShardFor(t.paraphrases[0]);
      bool all_same = true;
      for (const auto& q : t.paraphrases) {
        if (cache.ShardFor(q) != anchor) {
          all_same = false;
          break;
        }
      }
      if (all_same) ++stable;
    }

    table.AddRow(
        {std::to_string(shards),
         TextTable::Percent(static_cast<double>(hits) / lookups),
         TextTable::Num(static_cast<double>(distcomps) / lookups, 0),
         std::to_string(cache.TotalSize()),
         TextTable::Percent(static_cast<double>(stable) /
                            bundle.universe->size())});
  }
  table.Print(std::cout, csv);
  std::cout << "\n(per-lookup ANN work drops with the shard count; the hit"
               " rate holds as long as routing keeps paraphrases together)\n";
  return 0;
}
