// Cluster-tier bench: wall-clock throughput through cortex_router over an
// in-process 3-node cortexd cluster, plus a live migration (node 3 joins
// mid-traffic) timed under load.  The whole topology — three
// ConcurrentShardedEngine+CortexServer nodes on Unix sockets, one
// ClusterRouter — lives in this process, so the bench runs anywhere ctest
// does.
//
// Flags:
//   --tasks=400        workload size (Musique profile)
//   --threads=4        client threads against the router
//   --replication=2    owners per key
//   --json             also write BENCH_cluster.json for the CI
//                      bench-diff flywheel
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "cluster/router.h"
#include "serve/client.h"
#include "serve/concurrent_engine.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

namespace {

struct Node {
  std::unique_ptr<serve::ConcurrentShardedEngine> engine;
  std::unique_ptr<serve::CortexServer> server;
  std::string socket;
};

std::unique_ptr<Node> StartNode(const WorkloadBundle& bundle,
                                const HashedEmbedder& embedder,
                                const JudgerModel& judger, int index,
                                std::size_t workers) {
  auto node = std::make_unique<Node>();
  node->socket = "/tmp/bench_cluster_" + std::to_string(::getpid()) + "_" +
                 std::to_string(index) + ".sock";
  serve::ConcurrentEngineOptions eopts;
  eopts.num_shards = 2;
  eopts.cache.capacity_tokens = 0.4 * bundle.TotalKnowledgeTokens();
  eopts.housekeeping_interval_sec = 0.0;
  node->engine = std::make_unique<serve::ConcurrentShardedEngine>(
      &embedder, &judger, eopts);
  serve::ServerOptions sopts;
  sopts.unix_path = node->socket;
  // cortexd serves thread-per-connection, and the router's pools hold
  // persistent connections — each node needs enough workers to cover every
  // router worker plus the migration stream (DESIGN.md §10 sizing rule).
  sopts.num_workers = workers;
  sopts.max_frame_bytes = std::size_t{64} << 20;
  node->server = std::make_unique<serve::CortexServer>(node->engine.get(),
                                                       sopts);
  std::string error;
  if (!node->server->Start(&error)) {
    std::cerr << "bench_cluster: node start failed: " << error << "\n";
    std::exit(1);
  }
  return node;
}

struct Phase {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t errors = 0;
  double wall = 0.0;

  double Throughput() const {
    return wall > 0 ? static_cast<double>(requests) / wall : 0.0;
  }
  double HitRate() const {
    const auto lookups = hits + misses;
    return lookups ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

// Closed-loop LOOKUP / INSERT-on-miss replay through the router.
Phase Replay(int port, const std::vector<const std::string*>& queries,
             const GroundTruthOracle& oracle, std::size_t threads) {
  std::vector<Phase> locals(threads);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      Phase& local = locals[tid];
      serve::BlockingClient client;
      std::string err;
      if (!client.ConnectTcp("127.0.0.1", port, &err)) {
        ++local.errors;
        return;
      }
      for (std::size_t i = tid; i < queries.size(); i += threads) {
        const std::string& query = *queries[i];
        serve::Request lookup;
        lookup.type = serve::RequestType::kLookup;
        lookup.query = query;
        const auto response = client.Call(lookup, &err);
        ++local.requests;
        if (!response) {
          ++local.errors;
          return;
        }
        if (response->type == serve::ResponseType::kHit) {
          ++local.hits;
          continue;
        }
        if (response->type != serve::ResponseType::kMiss) {
          ++local.errors;
          continue;
        }
        ++local.misses;
        serve::Request insert;
        insert.type = serve::RequestType::kInsert;
        insert.key = query;
        insert.value = oracle.ExpectedInfo(query);
        insert.staticity = oracle.Staticity(query);
        if (insert.value.empty()) continue;
        const auto inserted = client.Call(insert, &err);
        ++local.requests;
        if (!inserted || (inserted->type != serve::ResponseType::kOk &&
                          inserted->type != serve::ResponseType::kReject)) {
          ++local.errors;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  Phase total;
  total.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const Phase& l : locals) {
    total.requests += l.requests;
    total.hits += l.hits;
    total.misses += l.misses;
    total.errors += l.errors;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 400));
  const auto threads =
      static_cast<std::size_t>(flags.GetInt("threads", 4));
  const auto replication =
      static_cast<std::size_t>(flags.GetInt("replication", 2));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);
  HashedEmbedder embedder;
  embedder.FitIdf(bundle.AllQueries());
  JudgerModel judger(bundle.oracle.get());

  std::vector<const std::string*> queries;
  for (const auto& task : bundle.tasks) {
    for (const auto& step : task.steps) queries.push_back(&step.query);
  }

  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(StartNode(bundle, embedder, judger, i, threads + 2));
  }

  cluster::RouterOptions ropts;
  ropts.port = 0;
  ropts.num_workers = threads;
  ropts.ring.replication = replication;
  ropts.embedder = &embedder;
  cluster::ClusterRouter router(ropts);
  std::string error;
  for (int i = 0; i < 3; ++i) {
    if (!router.AddNode("node" + std::to_string(i),
                        "unix:" + nodes[static_cast<std::size_t>(i)]->socket,
                        &error)) {
      std::cerr << "bench_cluster: " << error << "\n";
      return 1;
    }
  }
  if (!router.Start(&error)) {
    std::cerr << "bench_cluster: " << error << "\n";
    return 1;
  }

  std::cout << "=== cluster bench: " << queries.size() << " queries, "
            << threads << " client threads, 3 nodes + router, replication="
            << replication << " ===\n\n";

  // Phase 1: cold cluster warms up through the router.
  const Phase warm = Replay(router.port(), queries, *bundle.oracle, threads);

  // Phase 2: node3 joins via live MIGRATE while the same traffic replays.
  Phase under_migration;
  std::uint64_t migrated_entries = 0;
  double migration_wall = 0.0;
  {
    std::thread traffic([&] {
      under_migration =
          Replay(router.port(), queries, *bundle.oracle, threads);
    });
    serve::BlockingClient op;
    std::string err;
    if (!op.ConnectTcp("127.0.0.1", router.port(), &err)) {
      std::cerr << "bench_cluster: operator connect failed: " << err << "\n";
      traffic.join();
      return 1;
    }
    op.SetMaxFrameBytes(std::size_t{64} << 20);
    serve::Request migrate;
    migrate.type = serve::RequestType::kMigrate;
    migrate.node_name = "node3";
    migrate.endpoint = "unix:" + nodes[3]->socket;
    const auto t0 = std::chrono::steady_clock::now();
    const auto response = op.Call(migrate, &err);
    migration_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    traffic.join();
    if (!response || response->type != serve::ResponseType::kOk) {
      std::cerr << "bench_cluster: MIGRATE failed: "
                << (response ? response->message : err) << "\n";
      return 1;
    }
    migrated_entries = response->id;
  }

  // Phase 3: steady state on the 4-node ring.
  const Phase after = Replay(router.port(), queries, *bundle.oracle, threads);

  const auto counter = [&](const char* name) {
    return router.registry()->GetCounter(name)->Value();
  };
  const std::uint64_t migration_bytes =
      counter("cortex_router_migration_bytes");

  TextTable table({"phase", "requests", "throughput (req/s)", "hit rate",
                   "errors"});
  table.AddRow({"warmup (3 nodes)", std::to_string(warm.requests),
                TextTable::Num(warm.Throughput()),
                TextTable::Percent(warm.HitRate()),
                std::to_string(warm.errors)});
  table.AddRow({"during migration", std::to_string(under_migration.requests),
                TextTable::Num(under_migration.Throughput()),
                TextTable::Percent(under_migration.HitRate()),
                std::to_string(under_migration.errors)});
  table.AddRow({"after (4 nodes)", std::to_string(after.requests),
                TextTable::Num(after.Throughput()),
                TextTable::Percent(after.HitRate()),
                std::to_string(after.errors)});
  table.Print(std::cout, csv);

  std::cout << "\nmigration: " << migrated_entries << " entries, "
            << migration_bytes << " bytes streamed, "
            << TextTable::Num(migration_wall, 2) << "s wall (ring v"
            << router.ring_version() << ", failovers="
            << counter("cortex_router_failovers") << ", double_reads="
            << counter("cortex_router_double_reads") << ", dual_writes="
            << counter("cortex_router_dual_writes") << ")\n";

  if (flags.GetBool("json", false)) {
    std::ofstream out("BENCH_cluster.json");
    out << "{\n  \"benchmark\": \"cluster_router\",\n  \"tasks\": " << tasks
        << ",\n  \"threads\": " << threads
        << ",\n  \"replication\": " << replication
        << ",\n  \"warm_hit_rate\": " << warm.HitRate()
        << ",\n  \"after_hit_rate\": " << after.HitRate()
        << ",\n  \"errors\": "
        << warm.errors + under_migration.errors + after.errors
        << ",\n  \"migrated_entries\": " << migrated_entries
        << ",\n  \"migration_bytes\": " << migration_bytes
        << ",\n  \"throughput_rps\": " << after.Throughput()
        << ",\n  \"migration_seconds\": " << migration_wall << "\n}\n";
    std::cout << "wrote BENCH_cluster.json\n";
  }

  router.Stop();
  for (auto& node : nodes) node->server->Stop();
  const bool failed =
      warm.errors + under_migration.errors + after.errors > 0;
  if (failed) {
    std::cerr << "\nFAIL: request errors during the run\n";
    return 1;
  }
  return 0;
}
