// Figure 10: end-to-end throughput under varying offered request rate on
// the Musique dataset at cache ratio 0.4.  Baselines plateau at the remote
// service's effective capacity; Cortex scales until the GPU saturates.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  std::cout << "=== Figure 10: throughput vs request rate (Musique, cache"
               " ratio 0.4) ===\n\n";

  TextTable table({"request rate (req/s)", "system", "throughput (req/s)",
                   "hit rate", "p99 latency (s)"});
  for (const double rate : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (const System system :
         {System::kVanilla, System::kExact, System::kCortex}) {
      ExperimentConfig config;
      config.system = system;
      config.cache_ratio = 0.4;
      config.driver = OpenLoop(rate);
      const auto r = RunExperiment(bundle, config);
      table.AddRow({TextTable::Num(rate, 1), SystemName(system),
                    TextTable::Num(r.metrics.Throughput()),
                    TextTable::Percent(r.metrics.CacheHitRate()),
                    TextTable::Num(r.metrics.P99Latency(), 1)});
    }
  }
  table.Print(std::cout, csv);
  std::cout << "\npaper shape: Agent_vanilla/Agent_exact plateau around ~1"
               " req/s (rate-limit bound); Agent_Cortex scales nearly"
               " linearly to several req/s (paper: 4.89 vs 1.09/0.86 at"
               " rate 8 -> 4.5x/5.7x).\n";
  return 0;
}
