// Figure 10: end-to-end throughput under varying offered request rate on
// the Musique dataset at cache ratio 0.4.  Baselines plateau at the remote
// service's effective capacity; Cortex scales until the GPU saturates.
//
// Three modes:
//   * default — the paper's experiment: offered load simulated on the
//     virtual clock (single-threaded, deterministic);
//   * --real-threads — real parallel speedup: N OS threads replay the
//     workload through the serving layer's ConcurrentShardedEngine
//     (per-shard shared_mutex) and we measure wall-clock throughput, the
//     scaling story behind cortexd's worker pool;
//   * --probe-scaling — the DESIGN.md §13 read path in isolation: N
//     threads hammer read-only Peek() against a pre-populated engine,
//     locked (shared_mutex probe) vs epoch (lock-free snapshot probe),
//     at 1..16 threads.  Nothing commits, so the two curves differ only
//     in how the probe synchronizes.
//   * --pipeline — the DESIGN.md §14 batching pipeline vs unbatched
//     lookups: N concurrent clients drive the same pre-populated engine
//     either directly (each lookup embeds + scans alone) or through
//     serve/BatchPipeline (cross-request batches share one embed pass
//     and one multi-query slab scan per shard).  Reports throughput and
//     client-observed p99 for both legs.
// Flags:
//   --json   also write BENCH_concurrency.json (the deterministic
//            virtual-clock table in default mode; thread-scaling rows in
//            --real-threads mode), BENCH_concurrency_probe.json
//            (--probe-scaling), or BENCH_concurrency_pipeline.json
//            (--pipeline) for the CI bench-diff flywheel
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/batch_pipeline.h"
#include "serve/concurrent_engine.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

namespace {

double RunRealThreads(const WorkloadBundle& bundle,
                      const HashedEmbedder& embedder,
                      const JudgerModel& judger, std::size_t num_shards,
                      std::size_t num_threads, double* hit_rate) {
  serve::ConcurrentEngineOptions opts;
  opts.num_shards = num_shards;
  opts.cache.capacity_tokens = 0.4 * bundle.TotalKnowledgeTokens();
  opts.housekeeping_interval_sec = 0.0;  // measure the lookup path only
  serve::ConcurrentShardedEngine engine(&embedder, &judger, opts);

  std::vector<const std::string*> queries;
  for (const auto& task : bundle.tasks) {
    for (const auto& step : task.steps) queries.push_back(&step.query);
  }

  const auto& oracle = *bundle.oracle;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t i = tid; i < queries.size(); i += num_threads) {
        const std::string& query = *queries[i];
        if (engine.Lookup(query)) continue;
        InsertRequest req;
        req.key = query;
        req.value = oracle.ExpectedInfo(query);
        if (req.value.empty()) continue;
        req.staticity = oracle.Staticity(query);
        req.initial_frequency = 1;
        engine.Insert(std::move(req));
      }
    });
  }
  for (auto& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto stats = engine.Stats();
  *hit_rate = stats.lookups ? static_cast<double>(stats.hits) /
                                  static_cast<double>(stats.lookups)
                            : 0.0;
  return wall > 0.0 ? static_cast<double>(queries.size()) / wall : 0.0;
}

int RealThreadsMain(const Flags& flags) {
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));
  const auto shards = static_cast<std::size_t>(flags.GetInt("shards", 4));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());

  std::cout << "=== Figure 10 (--real-threads): wall-clock throughput"
               " through ConcurrentShardedEngine (Musique, cache ratio 0.4, "
            << shards << " shards) ===\n\n";

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  thread_counts.erase(
      std::remove_if(thread_counts.begin(), thread_counts.end(),
                     [hw](std::size_t t) { return t > 2 * hw; }),
      thread_counts.end());

  TextTable table(
      {"client threads", "throughput (req/s)", "speedup", "hit rate"});
  struct Row {
    std::size_t threads;
    double throughput, speedup, hit_rate;
  };
  std::vector<Row> rows;
  double base = 0.0;
  for (const std::size_t t : thread_counts) {
    double hit_rate = 0.0;
    const double tput =
        RunRealThreads(bundle, embedder, judger, shards, t, &hit_rate);
    if (base == 0.0) base = tput;
    rows.push_back({t, tput, base > 0 ? tput / base : 0.0, hit_rate});
    table.AddRow({std::to_string(t), TextTable::Num(tput),
                  TextTable::Num(base > 0 ? tput / base : 0.0, 2) + "x",
                  TextTable::Percent(hit_rate)});
  }
  table.Print(std::cout, csv);
  if (flags.GetBool("json", false)) {
    std::ofstream out("BENCH_concurrency.json");
    out << "{\n  \"benchmark\": \"concurrency_real_threads\",\n  \"shards\": "
        << shards << ",\n  \"tasks\": " << tasks << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"threads\": " << rows[i].threads
          << ", \"throughput_rps\": " << rows[i].throughput
          << ", \"speedup\": " << rows[i].speedup
          << ", \"hit_rate\": " << rows[i].hit_rate << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_concurrency.json\n";
  }
  std::cout << "\nexpected shape: near-linear scaling while threads <="
               " shards (probes run under per-shard shared locks), then"
               " commit/insert serialisation flattens the curve.\n";
  return 0;
}

// One (mode, threads) cell: every thread strides the query list doing
// read-only Peeks for a fixed per-thread count; returns aggregate
// lookups/sec.  Peek mutates nothing, so one pre-seeded engine per mode
// serves every thread count (seeding republishes the shard snapshot per
// insert — rebuilding engines per cell would swamp the run).
double RunProbeScaling(serve::ConcurrentShardedEngine& engine,
                       const std::vector<const std::string*>& queries,
                       std::size_t num_threads, std::size_t per_thread,
                       std::size_t* hits) {
  std::atomic<std::size_t> hit_count{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    pool.emplace_back([&, tid] {
      std::size_t local_hits = 0;
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::string& query = *queries[(tid + i) % queries.size()];
        if (engine.Peek(query)) ++local_hits;
      }
      hit_count.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  *hits = hit_count.load();
  const auto total = static_cast<double>(num_threads * per_thread);
  return wall > 0.0 ? total / wall : 0.0;
}

int ProbeScalingMain(const Flags& flags) {
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 200));
  const auto shards = static_cast<std::size_t>(flags.GetInt("shards", 4));
  const auto per_thread =
      static_cast<std::size_t>(flags.GetInt("lookups-per-thread", 2000));
  // Widen the topic universe (default 4000 vs Musique's 250) so the probe
  // is scan-bound: with ~a thousand resident rows per shard the ANN scan
  // dominates, which is what separates the two probe designs — the
  // locked path scans fp32 index rows under a shared lock, the epoch
  // path streams the quantized snapshot slab with no lock at all.
  const auto topics =
      static_cast<std::size_t>(flags.GetInt("topics", 4000));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  profile.universe.num_topics = topics;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  HashedEmbedder embedder;
  embedder.FitIdf(bundle.AllQueries());
  JudgerModel judger(bundle.oracle.get());

  std::vector<const std::string*> queries;
  for (const auto& task : bundle.tasks) {
    for (const auto& step : task.steps) queries.push_back(&step.query);
  }

  // One engine per mode (lock_free_probe is fixed at construction), each
  // seeded with the whole topic universe and warmed so every cell probes
  // the same steady state.
  const auto make_engine = [&](bool lock_free) {
    serve::ConcurrentEngineOptions opts;
    opts.num_shards = shards;
    opts.cache.capacity_tokens = bundle.TotalKnowledgeTokens();
    opts.housekeeping_interval_sec = 0.0;
    opts.lock_free_probe = lock_free;
    auto engine = std::make_unique<serve::ConcurrentShardedEngine>(
        &embedder, &judger, opts);
    for (const auto& topic : bundle.universe->topics()) {
      InsertRequest req;
      req.key = topic.paraphrases.front();
      req.value = topic.answer;
      req.staticity = topic.staticity;
      req.initial_frequency = 1;
      engine->Insert(std::move(req));
    }
    for (const std::string* q : queries) engine->Peek(*q);
    return engine;
  };
  const auto locked_engine = make_engine(/*lock_free=*/false);
  const auto epoch_engine = make_engine(/*lock_free=*/true);

  std::cout << "=== probe scaling (read-only Peek, locked shared_mutex vs"
               " lock-free epoch snapshot, "
            << shards << " shards, " << topics << " resident topics, "
            << per_thread << " lookups/thread) ===\n\n";

  struct Row {
    std::size_t threads;
    double locked_tput, epoch_tput, epoch_vs_locked;
    std::size_t hits;
  };
  std::vector<Row> rows;
  TextTable table({"threads", "locked (req/s)", "epoch (req/s)",
                   "epoch/locked"});
  for (const std::size_t t :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{16}}) {
    std::size_t locked_hits = 0, epoch_hits = 0;
    const double locked = RunProbeScaling(*locked_engine, queries, t,
                                          per_thread, &locked_hits);
    const double epoch = RunProbeScaling(*epoch_engine, queries, t,
                                         per_thread, &epoch_hits);
    if (locked_hits != epoch_hits) {
      std::cout << "WARNING: hit-count mismatch at " << t << " threads ("
                << locked_hits << " locked vs " << epoch_hits
                << " epoch)\n";
    }
    const double ratio = locked > 0.0 ? epoch / locked : 0.0;
    rows.push_back({t, locked, epoch, ratio, epoch_hits});
    table.AddRow({std::to_string(t), TextTable::Num(locked),
                  TextTable::Num(epoch), TextTable::Num(ratio, 2) + "x"});
  }
  table.Print(std::cout, csv);
  if (flags.GetBool("json", false)) {
    std::ofstream out("BENCH_concurrency_probe.json");
    out << "{\n  \"benchmark\": \"concurrency_probe_scaling\",\n"
           "  \"shards\": "
        << shards << ",\n  \"tasks\": " << tasks
        << ",\n  \"lookups_per_thread\": " << per_thread
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"threads\": " << rows[i].threads
          << ", \"locked_throughput_rps\": " << rows[i].locked_tput
          << ", \"epoch_throughput_rps\": " << rows[i].epoch_tput
          << ", \"epoch_speedup_vs_locked\": " << rows[i].epoch_vs_locked
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_concurrency_probe.json\n";
  }
  std::cout << "\nexpected shape: the curves track each other at 1 thread"
               " (same scan, same kernels); as threads grow the locked curve"
               " flattens on shared_mutex reader-count traffic while the"
               " epoch curve keeps scaling — the gap is the point of"
               " DESIGN.md §13.\n";
  return 0;
}

// One (mode, clients) cell of the --pipeline leg: `clients` threads each
// run `per_thread` lookups against a pre-populated engine, either direct
// (sequential: every lookup embeds and scans alone) or through a
// BatchPipeline (cross-request batches).  The engine is shared across
// cells (seeding republishes the snapshot per insert, so rebuilding it
// per cell would dominate the run) and warmed before the first cell, so
// every cell measures the same steady state.  Returns aggregate
// lookups/sec and fills the client-observed latency histogram.
double RunPipelineCell(serve::ConcurrentShardedEngine& engine,
                       const std::vector<const std::string*>& queries,
                       bool batched, std::size_t clients,
                       std::size_t per_thread, std::size_t max_batch,
                       std::uint64_t window_us, std::size_t pipe_threads,
                       Histogram* latency) {
  serve::BatchPipelineOptions popts;
  popts.max_batch = batched ? max_batch : 1;  // 1 = direct engine calls
  popts.batch_window_us = window_us;
  popts.num_threads = pipe_threads;
  serve::BatchPipeline pipeline(&engine, popts);

  struct Baseline {
    std::uint64_t count;
    double sum;
  };
  std::map<std::string, Baseline> before;
  if (getenv("CORTEX_BENCH_DEBUG")) {
    for (const auto& e : engine.registry()->Snapshot().entries) {
      if (e.kind == telemetry::TelemetrySnapshot::Kind::kHistogram)
        before[e.name] = {e.histogram.count,
                          e.histogram.mean() * e.histogram.count};
    }
  }

  std::mutex merge_mu;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < clients; ++tid) {
    pool.emplace_back([&, tid] {
      Histogram local;
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::string& query = *queries[(tid * 37 + i) % queries.size()];
        const auto q0 = std::chrono::steady_clock::now();
        pipeline.Lookup(query);
        local.Add(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - q0)
                      .count());
      }
      std::lock_guard<std::mutex> lk(merge_mu);
      latency->Merge(local);
    });
  }
  for (auto& t : pool) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  pipeline.Drain();
  if (getenv("CORTEX_BENCH_DEBUG")) {
    for (const auto& e : engine.registry()->Snapshot().entries) {
      if (e.kind != telemetry::TelemetrySnapshot::Kind::kHistogram) continue;
      const Baseline base = before.count(e.name) ? before[e.name]
                                                 : Baseline{0, 0.0};
      const std::uint64_t dc = e.histogram.count - base.count;
      if (dc == 0) continue;
      const double dsum =
          e.histogram.mean() * e.histogram.count - base.sum;
      std::fprintf(stderr, "[%s clients=%zu] %s count=%llu mean=%.1fus\n",
                   batched ? "bat" : "seq", clients, e.name.c_str(),
                   (unsigned long long)dc, dsum / dc * 1e6);
    }
  }
  const auto total = static_cast<double>(clients * per_thread);
  return wall > 0.0 ? total / wall : 0.0;
}

int PipelineMain(const Flags& flags) {
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 200));
  const auto shards = static_cast<std::size_t>(flags.GetInt("shards", 2));
  const auto per_thread =
      static_cast<std::size_t>(flags.GetInt("lookups-per-thread", 400));
  const auto max_batch =
      static_cast<std::size_t>(flags.GetInt("max-pipeline-batch", 8));
  const auto window_us =
      static_cast<std::uint64_t>(flags.GetInt("batch-window-us", 200));
  const auto pipe_threads =
      static_cast<std::size_t>(flags.GetInt("pipeline-threads", 2));
  // The batching win is on the scan tier, so this leg widens the topic
  // universe (default 12000 vs Musique's 250): several thousand resident
  // rows per shard push the slab past L2, making the scan the dominant,
  // memory-bound per-lookup cost — exactly the regime where the mq
  // kernels' read-the-slab-once-per-batch amortization pays.
  const auto topics =
      static_cast<std::size_t>(flags.GetInt("topics", 12000));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  profile.universe.num_topics = topics;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  HashedEmbedder embedder;
  embedder.FitIdf(bundle.AllQueries());
  JudgerModel judger(bundle.oracle.get());

  // One shared engine for every cell: seeding republishes the shard
  // snapshot on each insert, so rebuilding per cell would swamp the
  // measured phase (and leave each cell probing cold pages).
  serve::ConcurrentEngineOptions opts;
  opts.num_shards = shards;
  opts.cache.capacity_tokens = bundle.TotalKnowledgeTokens();  // no eviction
  opts.housekeeping_interval_sec = 0.0;
  // This leg scans fp32 rows: the f32 scan streams 4x the bytes of the
  // default i8 tier, which makes it memory-bound — the regime where the
  // mq kernels' read-the-slab-once-per-batch amortization pays.  The i8
  // tier attacks the same scan from the other side (fewer bytes per
  // query) and is compute-bound per query, so batching adds little there.
  opts.probe_scan_format = RowFormat::kF32;
  serve::ConcurrentShardedEngine engine(&embedder, &judger, opts);

  std::vector<const std::string*> queries;
  for (const auto& task : bundle.tasks) {
    for (const auto& step : task.steps) queries.push_back(&step.query);
  }
  // Seed the WHOLE topic universe (not just the task queries) so every
  // lookup scans the full resident set.
  for (const auto& topic : bundle.universe->topics()) {
    InsertRequest req;
    req.key = topic.paraphrases.front();
    req.value = topic.answer;
    req.staticity = topic.staticity;
    req.initial_frequency = 1;
    engine.Insert(std::move(req));
  }
  // Warm pass: fault in the slab, settle recalibration and frequency
  // state, so the first timed cell sees the same steady state as the
  // last.
  for (const std::string* q : queries) engine.Lookup(*q);

  std::cout << "=== pipeline batching (DESIGN.md §14): batched vs"
               " sequential lookups, "
            << shards << " shards, max_batch=" << max_batch << ", window="
            << window_us << "us, " << per_thread
            << " lookups/client ===\n\n";

  struct Row {
    std::size_t clients;
    double seq_tput, bat_tput, speedup, seq_p99_ms, bat_p99_ms;
  };
  std::vector<Row> rows;
  TextTable table({"clients", "sequential (req/s)", "batched (req/s)",
                   "speedup", "seq p99 (ms)", "batched p99 (ms)"});
  for (const std::size_t c :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    Histogram seq_lat, bat_lat;
    const double seq =
        RunPipelineCell(engine, queries, /*batched=*/false, c, per_thread,
                        max_batch, window_us, pipe_threads, &seq_lat);
    const double bat =
        RunPipelineCell(engine, queries, /*batched=*/true, c, per_thread,
                        max_batch, window_us, pipe_threads, &bat_lat);
    const double speedup = seq > 0.0 ? bat / seq : 0.0;
    rows.push_back({c, seq, bat, speedup, seq_lat.p99() * 1e3,
                    bat_lat.p99() * 1e3});
    table.AddRow({std::to_string(c), TextTable::Num(seq),
                  TextTable::Num(bat), TextTable::Num(speedup, 2) + "x",
                  TextTable::Num(seq_lat.p99() * 1e3, 3),
                  TextTable::Num(bat_lat.p99() * 1e3, 3)});
  }
  table.Print(std::cout, csv);
  if (flags.GetBool("json", false)) {
    std::ofstream out("BENCH_concurrency_pipeline.json");
    out << "{\n  \"benchmark\": \"concurrency_pipeline\",\n  \"shards\": "
        << shards << ",\n  \"tasks\": " << tasks
        << ",\n  \"max_batch\": " << max_batch
        << ",\n  \"batch_window_us\": " << window_us
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"clients\": " << rows[i].clients
          << ", \"sequential_throughput_rps\": " << rows[i].seq_tput
          << ", \"batched_throughput_rps\": " << rows[i].bat_tput
          << ", \"batched_speedup\": " << rows[i].speedup
          << ", \"sequential_p99_latency_ms\": " << rows[i].seq_p99_ms
          << ", \"batched_p99_latency_ms\": " << rows[i].bat_p99_ms << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_concurrency_pipeline.json\n";
  }
  std::cout << "\nexpected shape: at few clients batches stay shallow and"
               " the two legs track each other; as clients grow the"
               " batched leg amortizes one embed pass and one slab scan"
               " per shard across the batch and pulls ahead, while its p99"
               " stays within ~2x of sequential (bounded by the flush"
               " window).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("pipeline", false)) {
    return PipelineMain(flags);
  }
  if (flags.GetBool("probe-scaling", false)) {
    return ProbeScalingMain(flags);
  }
  if (flags.GetBool("real-threads", false)) {
    return RealThreadsMain(flags);
  }
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  std::cout << "=== Figure 10: throughput vs request rate (Musique, cache"
               " ratio 0.4) ===\n\n";

  TextTable table({"request rate (req/s)", "system", "throughput (req/s)",
                   "hit rate", "p99 latency (s)"});
  struct Row {
    double rate;
    std::string system;
    double throughput, hit_rate, p99;
  };
  std::vector<Row> rows;
  for (const double rate : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (const System system :
         {System::kVanilla, System::kExact, System::kCortex}) {
      ExperimentConfig config;
      config.system = system;
      config.cache_ratio = 0.4;
      config.driver = OpenLoop(rate);
      const auto r = RunExperiment(bundle, config);
      rows.push_back({rate, SystemName(system), r.metrics.Throughput(),
                      r.metrics.CacheHitRate(), r.metrics.P99Latency()});
      table.AddRow({TextTable::Num(rate, 1), SystemName(system),
                    TextTable::Num(r.metrics.Throughput()),
                    TextTable::Percent(r.metrics.CacheHitRate()),
                    TextTable::Num(r.metrics.P99Latency(), 1)});
    }
  }
  table.Print(std::cout, csv);
  // The virtual-clock table is fully deterministic, so the committed
  // baseline diffs tightly in CI (scripts/bench_diff.py).
  if (flags.GetBool("json", false)) {
    std::ofstream out("BENCH_concurrency.json");
    out << "{\n  \"benchmark\": \"concurrency_virtual_clock\",\n  \"tasks\": "
        << tasks << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"rate\": " << rows[i].rate << ", \"system\": \""
          << rows[i].system << "\", \"throughput_rps\": "
          << rows[i].throughput << ", \"hit_rate\": " << rows[i].hit_rate
          << ", \"p99_latency_s\": " << rows[i].p99 << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_concurrency.json\n";
  }
  std::cout << "\npaper shape: Agent_vanilla/Agent_exact plateau around ~1"
               " req/s (rate-limit bound); Agent_Cortex scales nearly"
               " linearly to several req/s (paper: 4.89 vs 1.09/0.86 at"
               " rate 8 -> 4.5x/5.7x).\n";
  return 0;
}
