// Regenerates Table 1 (per-call pricing of remote data services) and the
// §2.2 headline cost arithmetic (daily API fees vs GPU-hour equivalents).
#include <iostream>

#include "net/cost_model.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);

  std::cout << "=== Table 1: cost of commonly used remote data access "
               "services ===\n";
  TextTable table1({"Company", "Operation", "Cost (per 1k reqs.)"});
  for (const auto& p : StandardApiPricing()) {
    table1.AddRow({p.provider, p.operation,
                   "$" + TextTable::Num(p.dollars_per_1k_calls, 0)});
  }
  table1.Print(std::cout, csv);

  std::cout << "\n=== §2.2 cost arithmetic ===\n";
  // A Google-AI-mode-scale service: ~30M tool calls/day at $0.005/call.
  const double calls_per_day = flags.GetDouble("calls-per-day", 30e6);
  CostTracker tracker;
  tracker.AddApiCall(GoogleSearchPricing(),
                     static_cast<std::uint64_t>(calls_per_day));
  const double daily_fees = tracker.api_dollars();
  const double gpu_hours_equiv = daily_fees / kGpuDollarsPerHour;

  TextTable table({"quantity", "value"});
  table.AddRow({"tool calls per day", TextTable::Num(calls_per_day, 0)});
  table.AddRow({"per-call fee ($)",
                TextTable::Num(GoogleSearchPricing().PerCall(), 3)});
  table.AddRow({"daily API fees ($)", TextTable::Num(daily_fees, 0)});
  table.AddRow({"H100 rental ($/h)", TextTable::Num(kGpuDollarsPerHour, 2)});
  table.AddRow({"equivalent GPU-hours/day", TextTable::Num(gpu_hours_equiv, 0)});
  table.Print(std::cout, csv);

  std::cout << "\npaper reference: ~$150k daily fees ~= 3300+ GPU-hours "
               "(§2.2); 5-10M daily queries -> $1.5-4.5M monthly (intro).\n";
  return 0;
}
