// Figure 9: end-to-end agent serving on the SWE-bench coding workload
// (sqlfluff-style repository, self-hosted RAG backend) under varying cache
// ratios, closed-loop concurrency.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);

  SweBenchProfile profile;
  profile.num_issues =
      static_cast<std::size_t>(flags.GetInt("issues", 300));
  const auto concurrency =
      static_cast<std::size_t>(flags.GetInt("concurrency", 6));
  const WorkloadBundle bundle = BuildSweBenchWorkload(profile);

  std::cout << "=== Figure 9: SWE-bench coding workload ("
            << bundle.tasks.size() << " issues, " << profile.num_files
            << " files, concurrency " << concurrency << ") ===\n\n";

  TextTable table({"cache ratio", "system", "throughput (req/s)", "hit rate",
                   "mean latency (s)", "RAG calls"});
  for (const double ratio : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    for (const System system :
         {System::kVanilla, System::kExact, System::kCortex}) {
      if (system == System::kVanilla && ratio != 0.1) continue;
      ExperimentConfig config;
      config.system = system;
      config.cache_ratio = ratio;
      config.driver = ClosedLoop(concurrency);
      config.service = RemoteDataService::SelfHostedRag();
      const auto r = RunExperiment(bundle, config);
      table.AddRow({TextTable::Num(ratio, 1), SystemName(system),
                    TextTable::Num(r.metrics.Throughput()),
                    TextTable::Percent(r.metrics.CacheHitRate()),
                    TextTable::Num(r.metrics.MeanLatency(), 2),
                    std::to_string(r.api_calls)});
    }
  }
  table.Print(std::cout, csv);
  std::cout << "\npaper shape: ~45% hit rate from shared file dependencies"
               " across issues, ~20% throughput gain over both baselines;"
               " exact matching misses re-phrasings of the same file"
               " request.\n";
  return 0;
}
