// Table 6: LCFU vs LRU vs LFU on the HotpotQA workload — LCFU trades a
// point or two of hit rate for better end-to-end throughput by preferring
// expensive-to-retrieve items.  Plus ablations the design section calls
// out: TTL on/off and the staticity term's role on the trend workload.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));

  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  // Heterogeneous retrieval costs are what separate LCFU from LFU: a third
  // of the topics live behind a premium API that is markedly slower and
  // pricier, so the *value* of a cached byte varies widely.
  profile.universe.premium_fraction = 0.35;
  profile.universe.premium_cost_scale = 5.0;
  profile.universe.premium_latency_scale = 4.0;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  std::cout << "=== Table 6: eviction policy comparison (HotpotQA, cache"
               " ratio 0.3) ===\n\n";
  TextTable table({"Metric", "Agent_LRU", "Agent_LFU", "LCFU"});
  std::vector<ExperimentResult> results;
  for (const EvictionKind kind :
       {EvictionKind::kLru, EvictionKind::kLfu, EvictionKind::kLcfu}) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.3;
    config.eviction = kind;
    // Closed loop with no hard quota: what LCFU optimises — time and money
    // saved per byte — translates directly into end-to-end latency and
    // throughput, instead of every miss costing one identical quota token.
    config.driver = ClosedLoop(8);
    config.service = RemoteDataService::GoogleSearchApi();
    config.service.rate_limit_per_min = -1.0;
    results.push_back(RunExperiment(bundle, config));
  }
  auto row = [&](const std::string& metric, auto getter, int precision) {
    std::vector<std::string> cells = {metric};
    for (const auto& r : results) {
      cells.push_back(TextTable::Num(getter(r), precision));
    }
    table.AddRow(cells);
  };
  row("Cache hit", [](const auto& r) { return r.metrics.CacheHitRate(); }, 2);
  row("Throughput (req/s)",
      [](const auto& r) { return r.metrics.Throughput(); }, 2);
  row("Mean latency (s)",
      [](const auto& r) { return r.metrics.MeanLatency(); }, 2);
  table.Print(std::cout, csv);
  std::cout << "(paper: LFU hits 0.89 vs LCFU 0.86, yet LCFU delivers up to"
               " 9% higher throughput by retaining costly items)\n\n";

  // --- Ablation: TTL aging on the trend workload ---
  std::cout << "=== Ablation: TTL aging and staticity on the trend workload"
               " ===\n";
  TrendProfile trend;
  trend.duration_sec = 400.0;
  const WorkloadBundle trace = BuildTrendWorkload(trend);
  TextTable ttl_table({"configuration", "hit rate", "throughput (req/s)",
                       "expirations", "evictions"});
  for (const bool ttl_enabled : {true, false}) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.25;
    config.engine.cache.ttl_enabled = ttl_enabled;
    // Short TTLs relative to the compressed trace so aging is visible.
    config.engine.cache.min_ttl_sec = 60.0;
    config.engine.cache.max_ttl_sec = 1200.0;
    const auto r = RunExperiment(trace, config);
    ttl_table.AddRow({ttl_enabled ? "TTL aging on" : "TTL aging off",
                      TextTable::Percent(r.metrics.CacheHitRate()),
                      TextTable::Num(r.metrics.Throughput()),
                      std::to_string(r.expirations),
                      std::to_string(r.evictions)});
  }
  ttl_table.Print(std::cout, csv);
  std::cout << "(TTL keeps ephemeral trend content from outstaying its"
               " validity; LCFU's staticity term already deprioritises it"
               " for eviction)\n\n";

  // --- Ablation: TinyLFU admission doorkeeper (DESIGN.md extension;
  //     answers §3.2's open admission question) ---
  std::cout << "=== Ablation: admission doorkeeper at small cache ratios"
               " ===\n";
  TextTable adm({"cache ratio", "doorkeeper", "hit rate",
                 "throughput (req/s)", "evictions"});
  for (const double ratio : {0.1, 0.2}) {
    for (const bool enabled : {false, true}) {
      ExperimentConfig config;
      config.system = System::kCortex;
      config.cache_ratio = ratio;
      config.engine.cache.admission_enabled = enabled;
      config.driver = ClosedLoop(8);
      config.service = RemoteDataService::GoogleSearchApi();
      config.service.rate_limit_per_min = -1.0;
      const auto r = RunExperiment(bundle, config);
      adm.AddRow({TextTable::Num(ratio, 1), enabled ? "on" : "off",
                  TextTable::Percent(r.metrics.CacheHitRate()),
                  TextTable::Num(r.metrics.Throughput()),
                  std::to_string(r.evictions)});
    }
  }
  adm.Print(std::cout, csv);
  std::cout << "(under tight capacity the doorkeeper stops one-hit wonders"
               " from evicting proven content)\n";
  return 0;
}
