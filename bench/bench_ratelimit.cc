// Figure 12 + Table 4: rate-limit analysis.
//
// Fig. 12: total remote API calls and retry ratio for Agent_vanilla vs
// Agent_Cortex on the same task set — Cortex slashes call volume (~92% in
// the paper) and with it the throttling-induced retries (25% -> ~0.5%).
//
// Table 4: normalized throughput with and without an API rate limit, on a
// self-hosted RAG service (the setting the paper uses because the Google
// quota cannot be lifted).
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 800));

  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  // --- Figure 12 ---
  std::cout << "=== Figure 12: data retrieval calls and retry ratio ===\n";
  // Moderate load: enough to brush against the quota without a meltdown
  // (the paper reports a 25% retry ratio for the vanilla agent).
  TextTable fig12({"system", "API calls", "retries", "retry ratio"});
  std::uint64_t vanilla_calls = 0, cortex_calls = 0;
  for (const System system : {System::kVanilla, System::kCortex}) {
    ExperimentConfig config;
    config.system = system;
    config.cache_ratio = 0.8;
    // Offered load just above the quota: the vanilla agent throttles (the
    // paper's ~25% retry regime) while Cortex stays under it.
    config.driver = OpenLoop(0.92);
    const auto r = RunExperiment(bundle, config);
    (system == System::kVanilla ? vanilla_calls : cortex_calls) =
        r.api_calls - r.api_retries;  // distinct requests reaching the API
    fig12.AddRow({SystemName(system), std::to_string(r.api_calls),
                  std::to_string(r.api_retries),
                  TextTable::Percent(r.retry_ratio, 2)});
  }
  fig12.Print(std::cout, csv);
  const double reduction =
      vanilla_calls
          ? 1.0 - static_cast<double>(cortex_calls) /
                      static_cast<double>(vanilla_calls)
          : 0.0;
  std::cout << "successful-call reduction: " << TextTable::Percent(reduction)
            << " (paper: ~1300 -> 103 calls, a 92% reduction; retries"
               " 25% -> 0.5%)\n\n";

  // --- Table 4 ---
  std::cout << "=== Table 4: normalized throughput w/o vs w/ API rate limit"
               " (RAG backend) ===\n";
  TextTable table4(
      {"system", "Without API Rate Limit", "With API Rate Limit"});
  double base_unlimited = 0.0, base_limited = 0.0;
  std::vector<std::vector<std::string>> rows;
  for (const System system : {System::kVanilla, System::kCortex}) {
    double thpt[2];
    for (const bool limited : {false, true}) {
      ExperimentConfig config;
      config.system = system;
      config.cache_ratio = 0.4;
      // Closed loop: latency translates into throughput, so removing the
      // remote round trip shows up even without a quota.
      config.driver = ClosedLoop(8);
      config.service = RemoteDataService::SelfHostedRag(limited);
      const auto r = RunExperiment(bundle, config);
      thpt[limited ? 1 : 0] = r.metrics.Throughput();
    }
    if (system == System::kVanilla) {
      base_unlimited = thpt[0];
      base_limited = thpt[1];
    }
    table4.AddRow({SystemName(system),
                   TextTable::Num(thpt[0] / base_unlimited, 2),
                   TextTable::Num(thpt[1] / base_limited, 2)});
  }
  table4.Print(std::cout, csv);
  std::cout << "(paper: 1.5x without a limit, 4.16x with the limit — rate"
               " limiting alone contributes ~2.8x)\n\n";

  // --- Ablation: transient remote failures (injected 5xx) ---
  std::cout << "=== Ablation: resilience to injected transient failures"
               " ===\n";
  TextTable flaky({"5xx probability", "system", "throughput (req/s)",
                   "p99 (s)", "transient failures absorbed"});
  for (const double p_fail : {0.0, 0.1, 0.25}) {
    for (const System system : {System::kVanilla, System::kCortex}) {
      ExperimentConfig config;
      config.system = system;
      config.cache_ratio = 0.5;
      config.driver = ClosedLoop(8);
      config.service = RemoteDataService::SelfHostedRag();
      config.service.transient_failure_probability = p_fail;
      const auto r = RunExperiment(bundle, config);
      flaky.AddRow({TextTable::Percent(p_fail, 0), SystemName(system),
                    TextTable::Num(r.metrics.Throughput()),
                    TextTable::Num(r.metrics.P99Latency(), 2),
                    std::to_string(r.api_retries)});
    }
  }
  flaky.Print(std::cout, csv);
  std::cout << "(caching shrinks the exposure: most requests never touch the"
               " flaky service, so tail latency degrades far less)\n";
  return 0;
}
