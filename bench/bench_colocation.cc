// Table 7: co-location efficiency — dedicated two-GPU deployment vs
// co-located MPS 80/20 partition at a representative cache ratio (0.6).
// Plus an ablation over the MPS split the design space allows.
#include <iostream>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 800));

  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  auto run = [&](DeploymentConfig gpu) {
    ExperimentConfig config;
    config.system = System::kCortex;
    config.cache_ratio = 0.6;
    config.gpu = gpu;
    // Closed loop against the unlimited RAG backend: the GPU is the
    // binding resource, so placement differences are what the numbers
    // measure (the paper's Table 7 regime).
    config.driver = ClosedLoop(16);
    config.service = RemoteDataService::SelfHostedRag();
    return RunExperiment(bundle, config);
  };

  std::cout << "=== Table 7: co-location efficiency ===\n\n";
  const auto dedicated = run(DeploymentConfig::DedicatedTwoGpu());
  const auto colocated = run(DeploymentConfig::Colocated80_20());
  TextTable table({"Metric", "Dedicated-2GPU", "Co-located (MPS 80/20)"});
  table.AddRow({"Throughput (req/s)",
                TextTable::Num(dedicated.metrics.Throughput()),
                TextTable::Num(colocated.metrics.Throughput())});
  table.AddRow({"p99 latency (ms)",
                TextTable::Num(dedicated.metrics.P99Latency() * 1000, 0),
                TextTable::Num(colocated.metrics.P99Latency() * 1000, 0)});
  table.AddRow({"GPUs", std::to_string(dedicated.num_gpus),
                std::to_string(colocated.num_gpus)});
  table.Print(std::cout, csv);
  std::cout << "throughput retention: "
            << TextTable::Percent(colocated.metrics.Throughput() /
                                  dedicated.metrics.Throughput())
            << " (paper: 2.72 vs 2.89 req/s = 94% retained, p99 +9.5%)\n\n";

  // --- Ablation: MPS split sweep ---
  std::cout << "=== Ablation: MPS compute split (agent share) ===\n";
  TextTable sweep({"agent share", "throughput (req/s)", "p99 (s)",
                   "mean cache check (s)"});
  for (const double share : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    DeploymentConfig gpu = DeploymentConfig::Colocated80_20();
    gpu.agent_compute_fraction = share;
    gpu.judger_compute_fraction = 1.0 - share;
    const auto r = run(gpu);
    sweep.AddRow({TextTable::Percent(share, 0),
                  TextTable::Num(r.metrics.Throughput()),
                  TextTable::Num(r.metrics.P99Latency(), 1),
                  TextTable::Num(r.metrics.MeanCacheCheckSeconds(), 3)});
  }
  sweep.Print(std::cout, csv);
  std::cout << "(larger agent shares speed up the latency-critical path;"
               " the judger tolerates a small slice because validation is"
               " prefill-only)\n";
  return 0;
}
