// Regenerates the workload-analysis artifacts:
//   Figure 2 — Zipfian popularity of search interests,
//   Figure 3 — bursty, correlated query spikes,
//   Table 2  — SWE-bench file access frequencies on the sqlfluff repo.
#include <iostream>

#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/workload_stats.h"
#include "workload/workloads.h"

using namespace cortex;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);

  // --- Figure 2: head topics dominate, long tail follows a power law ---
  std::cout << "=== Figure 2: Zipfian popularity of search topics ===\n";
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = 2000;
  const auto search = BuildSkewedSearchWorkload(profile);
  const auto pop = ComputePopularity(search);
  TextTable fig2({"rank", "topic id", "queries", "share"});
  for (std::size_t r = 0; r < std::min<std::size_t>(10, pop.ranked.size());
       ++r) {
    fig2.AddRow({std::to_string(r + 1), std::to_string(pop.ranked[r].first),
                 std::to_string(pop.ranked[r].second),
                 TextTable::Percent(
                     static_cast<double>(pop.ranked[r].second) /
                     static_cast<double>(pop.total_queries))});
  }
  fig2.Print(std::cout, csv);
  std::cout << "total queries: " << pop.total_queries
            << ", top-5 share: " << TextTable::Percent(pop.HeadShare(5))
            << ", log-log slope: " << TextTable::Num(pop.zipf_slope, 2)
            << " (paper: head topics dominate 24h/7d windows; zipf-like"
               " decay)\n\n";

  // --- Figure 3: bursty and correlated spikes ---
  std::cout << "=== Figure 3: bursty, correlated query spikes ===\n";
  TrendProfile trend;
  const auto trace = BuildTrendWorkload(trend);
  const std::size_t group = 1 + trend.related_per_trend;
  const auto series =
      TopicTimeSeries(trace, 30.0, trend.num_trend_topics * group);
  TextTable fig3({"trend topic", "peak bin", "burstiness (peak/mean)",
                  "corr. with related-1", "corr. with related-2"});
  for (std::size_t s = 0; s < trend.num_trend_topics; ++s) {
    const auto& head = series[s * group];
    std::size_t peak_bin = 0;
    for (std::size_t b = 1; b < head.size(); ++b) {
      if (head[b] > head[peak_bin]) peak_bin = b;
    }
    fig3.AddRow({"trend-" + std::to_string(s), std::to_string(peak_bin),
                 TextTable::Num(Burstiness(head)),
                 TextTable::Num(
                     PearsonCorrelation(head, series[s * group + 1]), 3),
                 TextTable::Num(
                     PearsonCorrelation(head, series[s * group + 2]), 3)});
  }
  fig3.Print(std::cout, csv);
  std::cout << "(paper: external events cause surges in a topic and its"
               " related themes together)\n\n";

  // --- Table 2: SWE-bench file access frequency ---
  std::cout << "=== Table 2: file access frequency (sqlfluff / SWE-bench)"
               " ===\n";
  SweBenchProfile swe;
  swe.num_issues = 2000;
  const auto code = BuildSweBenchWorkload(swe);
  const auto freqs = FileAccessFrequencies(code);
  TextTable table2({"File-ID", "Access Freq. (measured)",
                    "Access Freq. (paper)"});
  for (std::size_t f = 0; f < swe.head_frequencies.size(); ++f) {
    table2.AddRow({std::to_string(f + 1), TextTable::Num(freqs[f]),
                   TextTable::Num(swe.head_frequencies[f])});
  }
  table2.Print(std::cout, csv);
  return 0;
}
