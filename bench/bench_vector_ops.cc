// Microbenchmark for the SIMD distance-kernel layer (embedding/simd_kernels).
//
// Measures ns/vector and effective memory bandwidth for the batched dot
// kernel — the operation behind every FlatIndex scan, IVF probe, and HNSW
// neighbour expansion — at the embedding dims that matter in practice
// (hashed embedder = 256; common sentence-transformer/OpenAI dims = 64 /
// 768 / 1536), for every kernel variant this binary + CPU supports.
//
// Flags:
//   --json          also write BENCH_vector_ops.json (variant, dim,
//                   ns/vector, GB/s) for machine consumption
//   --csv           CSV tables instead of aligned text
//   --rows=N        rows in the scanned block (default 4096)
//   --min-ms=M      per-measurement wall budget (default 200 ms)
//
// A second table covers the quantized scan tier (DESIGN.md §13): the same
// batched dot at f32 / f16 / i8 row encodings with slab-style padded
// strides, reporting bytes streamed per scored vector — the number the
// int8 path exists to shrink.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "embedding/simd_kernels.h"
#include "embedding/vector_slab.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

using namespace cortex;

namespace {

struct Measurement {
  const char* variant;
  std::size_t dim;
  double ns_per_vector;
  double gb_per_sec;
  double speedup_vs_scalar;  // filled in after the scalar row is known
};

double MeasureNsPerVector(const simd::KernelSet& kernels, const float* query,
                          const float* rows, std::size_t n, std::size_t dim,
                          double min_ms, double& checksum) {
  std::vector<float> out(n);
  // Warm-up pass: faults pages, primes caches and the branch predictor.
  kernels.dot_batch(query, rows, n, dim, dim, out.data());
  checksum += static_cast<double>(out[n - 1]);

  const auto start = std::chrono::steady_clock::now();
  std::size_t iters = 0;
  double elapsed_ns = 0.0;
  do {
    kernels.dot_batch(query, rows, n, dim, dim, out.data());
    checksum += static_cast<double>(out[n - 1]);  // defeat dead-code elim
    ++iters;
    elapsed_ns = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  } while (elapsed_ns < min_ms * 1e6);
  return elapsed_ns / (static_cast<double>(iters) * static_cast<double>(n));
}

struct QuantMeasurement {
  const char* variant;
  const char* format;
  std::size_t dim;
  double ns_per_vector;
  double bytes_per_vector;
  double gb_per_sec;
  double speedup_vs_f32;  // filled in after the f32 row is known
};

// Times one (variant, format, dim) cell over a VectorSlab's rows via the
// gather kernels — the exact call shape of the engine's snapshot scan.
double MeasureQuantNsPerVector(const simd::KernelSet& kernels,
                               RowFormat format, const VectorSlab& slab,
                               const std::vector<float>& query, std::size_t n,
                               double min_ms, double& checksum) {
  const std::size_t dim = query.size();
  std::vector<float> out(n);
  std::vector<std::int8_t> qi8(dim);
  float qscale = 0.0f;
  std::vector<const float*> rows_f32;
  std::vector<const std::uint16_t*> rows_f16;
  std::vector<const std::int8_t*> rows_i8;
  std::vector<float> scales;
  for (std::uint32_t i = 0; i < n; ++i) {
    switch (format) {
      case RowFormat::kF32:
        rows_f32.push_back(slab.Row(i));
        break;
      case RowFormat::kF16:
        rows_f16.push_back(slab.RowF16(i));
        break;
      case RowFormat::kI8:
        rows_i8.push_back(slab.RowI8(i));
        scales.push_back(slab.RowScale(i));
        break;
    }
  }
  const auto scan = [&] {
    switch (format) {
      case RowFormat::kF32:
        kernels.dot_rows(query.data(), rows_f32.data(), n, dim, out.data());
        break;
      case RowFormat::kF16:
        kernels.dot_rows_f16(query.data(), rows_f16.data(), n, dim,
                             out.data());
        break;
      case RowFormat::kI8:
        // The engine quantizes the query once per probe, i.e. once per
        // scan call — keep that cost inside the timed region.
        qscale = simd::QuantizeRowI8(query, qi8.data());
        kernels.dot_rows_i8(qi8.data(), qscale, rows_i8.data(),
                            scales.data(), n, dim, out.data());
        break;
    }
  };
  scan();  // warm-up: faults pages, primes caches
  checksum += static_cast<double>(out[n - 1]);

  const auto start = std::chrono::steady_clock::now();
  std::size_t iters = 0;
  double elapsed_ns = 0.0;
  do {
    scan();
    checksum += static_cast<double>(out[n - 1]);
    ++iters;
    elapsed_ns = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  } while (elapsed_ns < min_ms * 1e6);
  return elapsed_ns / (static_cast<double>(iters) * static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const bool json = flags.GetBool("json", false);
  const auto n = static_cast<std::size_t>(flags.GetInt("rows", 4096));
  const double min_ms = flags.GetDouble("min-ms", 200.0);

  const auto variants = simd::SupportedVariants();
  std::cout << "=== SIMD kernel throughput (dot_batch, " << n
            << " rows/call) ===\n";
  std::cout << "active dispatch: "
            << simd::VariantName(simd::ActiveVariant()) << "\n\n";

  std::vector<Measurement> all;
  double checksum = 0.0;
  TextTable table({"dim", "variant", "ns/vector", "GB/s", "vs scalar"});
  for (const std::size_t dim : {std::size_t{64}, std::size_t{256},
                                std::size_t{768}, std::size_t{1536}}) {
    Rng rng(17);
    std::vector<float> rows(n * dim), query(dim);
    for (auto& x : rows) x = static_cast<float>(rng.Normal());
    for (auto& x : query) x = static_cast<float>(rng.Normal());

    double scalar_ns = 0.0;
    for (const auto v : variants) {
      const double ns =
          MeasureNsPerVector(simd::KernelsFor(v), query.data(), rows.data(),
                             n, dim, min_ms, checksum);
      if (v == simd::Variant::kScalar) scalar_ns = ns;
      // Bytes streamed per scored vector: the row itself (the query stays
      // in registers/L1 across the whole batch).
      const double gbps = static_cast<double>(dim) * 4.0 / ns;
      const double speedup = scalar_ns > 0.0 ? scalar_ns / ns : 1.0;
      all.push_back({simd::VariantName(v), dim, ns, gbps, speedup});
      table.AddRow({TextTable::Num(static_cast<double>(dim), 0),
                    simd::VariantName(v), TextTable::Num(ns, 2),
                    TextTable::Num(gbps, 2),
                    TextTable::Num(speedup, 2) + "x"});
    }
  }
  table.Print(std::cout, csv);
  std::cout << "(checksum " << checksum << ")\n";

  std::cout << "\n=== quantized scan tier (dot_rows gather, " << n
            << " rows/call) ===\n\n";
  std::vector<QuantMeasurement> quant;
  TextTable qtable(
      {"dim", "variant", "format", "ns/vector", "B/vector", "GB/s",
       "vs f32"});
  for (const std::size_t dim : {std::size_t{64}, std::size_t{256},
                                std::size_t{768}, std::size_t{1536}}) {
    Rng rng(17);
    std::vector<float> query(dim), row(dim);
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    for (const auto v : variants) {
      double f32_ns = 0.0;
      for (const RowFormat format :
           {RowFormat::kF32, RowFormat::kF16, RowFormat::kI8}) {
        VectorSlab slab(dim, format);
        Rng row_rng(29);
        for (std::size_t i = 0; i < n; ++i) {
          for (auto& x : row) x = static_cast<float>(row_rng.Normal());
          slab.Add(row);
        }
        const double ns =
            MeasureQuantNsPerVector(simd::KernelsFor(v), format, slab, query,
                                    n, min_ms, checksum);
        if (format == RowFormat::kF32) f32_ns = ns;
        const auto bytes = static_cast<double>(slab.row_bytes());
        const double gbps = bytes / ns;
        const double speedup = f32_ns > 0.0 ? f32_ns / ns : 1.0;
        quant.push_back({simd::VariantName(v), RowFormatName(format), dim, ns,
                         bytes, gbps, speedup});
        qtable.AddRow({TextTable::Num(static_cast<double>(dim), 0),
                       simd::VariantName(v), RowFormatName(format),
                       TextTable::Num(ns, 2), TextTable::Num(bytes, 0),
                       TextTable::Num(gbps, 2),
                       TextTable::Num(speedup, 2) + "x"});
      }
    }
  }
  qtable.Print(std::cout, csv);
  std::cout << "(checksum " << checksum << ")\n";

  if (json) {
    std::ofstream out("BENCH_vector_ops.json");
    out << "{\n  \"benchmark\": \"vector_ops\",\n  \"active_variant\": \""
        << simd::VariantName(simd::ActiveVariant())
        << "\",\n  \"rows_per_call\": " << n << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& m = all[i];
      out << "    {\"variant\": \"" << m.variant << "\", \"dim\": " << m.dim
          << ", \"ns_per_vector\": " << m.ns_per_vector
          << ", \"gb_per_sec\": " << m.gb_per_sec
          << ", \"speedup_vs_scalar\": " << m.speedup_vs_scalar << "}"
          << (i + 1 < all.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"quantized\": [\n";
    for (std::size_t i = 0; i < quant.size(); ++i) {
      const auto& m = quant[i];
      out << "    {\"variant\": \"" << m.variant << "\", \"format\": \""
          << m.format << "\", \"dim\": " << m.dim
          << ", \"ns_per_vector\": " << m.ns_per_vector
          << ", \"bytes_per_vector\": " << m.bytes_per_vector
          << ", \"gb_per_sec\": " << m.gb_per_sec
          << ", \"speedup_vs_f32\": " << m.speedup_vs_f32 << "}"
          << (i + 1 < quant.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_vector_ops.json\n";
  }
  return 0;
}
