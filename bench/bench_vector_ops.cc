// Microbenchmark for the SIMD distance-kernel layer (embedding/simd_kernels).
//
// Measures ns/vector and effective memory bandwidth for the batched dot
// kernel — the operation behind every FlatIndex scan, IVF probe, and HNSW
// neighbour expansion — at the embedding dims that matter in practice
// (hashed embedder = 256; common sentence-transformer/OpenAI dims = 64 /
// 768 / 1536), for every kernel variant this binary + CPU supports.
//
// Flags:
//   --json          also write BENCH_vector_ops.json (variant, dim,
//                   ns/vector, GB/s) for machine consumption
//   --csv           CSV tables instead of aligned text
//   --rows=N        rows in the scanned block (default 4096)
//   --min-ms=M      per-measurement wall budget (default 200 ms)
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "embedding/simd_kernels.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

using namespace cortex;

namespace {

struct Measurement {
  const char* variant;
  std::size_t dim;
  double ns_per_vector;
  double gb_per_sec;
  double speedup_vs_scalar;  // filled in after the scalar row is known
};

double MeasureNsPerVector(const simd::KernelSet& kernels, const float* query,
                          const float* rows, std::size_t n, std::size_t dim,
                          double min_ms, double& checksum) {
  std::vector<float> out(n);
  // Warm-up pass: faults pages, primes caches and the branch predictor.
  kernels.dot_batch(query, rows, n, dim, dim, out.data());
  checksum += static_cast<double>(out[n - 1]);

  const auto start = std::chrono::steady_clock::now();
  std::size_t iters = 0;
  double elapsed_ns = 0.0;
  do {
    kernels.dot_batch(query, rows, n, dim, dim, out.data());
    checksum += static_cast<double>(out[n - 1]);  // defeat dead-code elim
    ++iters;
    elapsed_ns = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  } while (elapsed_ns < min_ms * 1e6);
  return elapsed_ns / (static_cast<double>(iters) * static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool csv = flags.GetBool("csv", false);
  const bool json = flags.GetBool("json", false);
  const auto n = static_cast<std::size_t>(flags.GetInt("rows", 4096));
  const double min_ms = flags.GetDouble("min-ms", 200.0);

  const auto variants = simd::SupportedVariants();
  std::cout << "=== SIMD kernel throughput (dot_batch, " << n
            << " rows/call) ===\n";
  std::cout << "active dispatch: "
            << simd::VariantName(simd::ActiveVariant()) << "\n\n";

  std::vector<Measurement> all;
  double checksum = 0.0;
  TextTable table({"dim", "variant", "ns/vector", "GB/s", "vs scalar"});
  for (const std::size_t dim : {std::size_t{64}, std::size_t{256},
                                std::size_t{768}, std::size_t{1536}}) {
    Rng rng(17);
    std::vector<float> rows(n * dim), query(dim);
    for (auto& x : rows) x = static_cast<float>(rng.Normal());
    for (auto& x : query) x = static_cast<float>(rng.Normal());

    double scalar_ns = 0.0;
    for (const auto v : variants) {
      const double ns =
          MeasureNsPerVector(simd::KernelsFor(v), query.data(), rows.data(),
                             n, dim, min_ms, checksum);
      if (v == simd::Variant::kScalar) scalar_ns = ns;
      // Bytes streamed per scored vector: the row itself (the query stays
      // in registers/L1 across the whole batch).
      const double gbps = static_cast<double>(dim) * 4.0 / ns;
      const double speedup = scalar_ns > 0.0 ? scalar_ns / ns : 1.0;
      all.push_back({simd::VariantName(v), dim, ns, gbps, speedup});
      table.AddRow({TextTable::Num(static_cast<double>(dim), 0),
                    simd::VariantName(v), TextTable::Num(ns, 2),
                    TextTable::Num(gbps, 2),
                    TextTable::Num(speedup, 2) + "x"});
    }
  }
  table.Print(std::cout, csv);
  std::cout << "(checksum " << checksum << ")\n";

  if (json) {
    std::ofstream out("BENCH_vector_ops.json");
    out << "{\n  \"benchmark\": \"vector_ops\",\n  \"active_variant\": \""
        << simd::VariantName(simd::ActiveVariant())
        << "\",\n  \"rows_per_call\": " << n << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& m = all[i];
      out << "    {\"variant\": \"" << m.variant << "\", \"dim\": " << m.dim
          << ", \"ns_per_vector\": " << m.ns_per_vector
          << ", \"gb_per_sec\": " << m.gb_per_sec
          << ", \"speedup_vs_scalar\": " << m.speedup_vs_scalar << "}"
          << (i + 1 < all.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote BENCH_vector_ops.json\n";
  }
  return 0;
}
