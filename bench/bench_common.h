// Shared experiment harness for the bench binaries: builds a serving stack
// (workload + GPU + remote service + resolver) for one of the paper's
// system configurations and runs it to completion on the virtual clock.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/resolvers.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "workload/workloads.h"

namespace cortex::bench {

// The evaluated configurations (§6.1 "Baseline systems").
enum class System { kVanilla, kExact, kAnnOnly, kCortex };

std::string SystemName(System system);

struct ExperimentConfig {
  System system = System::kCortex;
  // Cache capacity as a fraction of the workload's knowledge footprint.
  double cache_ratio = 0.4;
  DriverOptions driver;
  RemoteServiceOptions service = RemoteDataService::GoogleSearchApi();
  // Unset: vanilla/exact get the whole GPU (they run no judger); Cortex
  // variants default to the co-located MPS 80/20 deployment.
  std::optional<DeploymentConfig> gpu;
  // Tweaks applied on top of defaults.
  CortexEngineOptions engine;  // capacity is overwritten from cache_ratio
  EvictionKind eviction = EvictionKind::kLcfu;
  bool prefetch_enabled = true;
  bool recalibration_enabled = true;
};

struct ExperimentResult {
  RunMetrics metrics;
  // Remote-service truth (includes background prefetch/recalibration calls).
  std::uint64_t api_calls = 0;
  std::uint64_t api_retries = 0;
  double api_cost_dollars = 0.0;
  double retry_ratio = 0.0;
  // GPU accounting.
  int num_gpus = 1;
  double wallclock_sec = 0.0;      // makespan of the run (virtual time)
  double gpu_cost_dollars = 0.0;   // wallclock x gpus x $/h
  // Engine telemetry (zero for baselines).
  std::uint64_t prefetches = 0;
  std::uint64_t recalibrations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  double final_tau_lsm = 0.0;

  double ThroughputPerDollar() const {
    const double total = api_cost_dollars + gpu_cost_dollars;
    return total > 0.0 ? metrics.Throughput() / total : 0.0;
  }
};

// Runs the bundle through the configured system.  Fresh components per call
// so runs never share state; everything is seeded, so results are
// deterministic.
ExperimentResult RunExperiment(const WorkloadBundle& bundle,
                               const ExperimentConfig& config);

// Convenience: open-loop driver at the given request rate.
DriverOptions OpenLoop(double rate);
// Convenience: closed-loop driver at the given concurrency.
DriverOptions ClosedLoop(std::size_t concurrency);

}  // namespace cortex::bench
