#include "bench_common.h"

namespace cortex::bench {

std::string SystemName(System system) {
  switch (system) {
    case System::kVanilla: return "Agent_vanilla";
    case System::kExact: return "Agent_exact";
    case System::kAnnOnly: return "Agent_ANN";
    case System::kCortex: return "Agent_Cortex";
  }
  return "?";
}

DriverOptions OpenLoop(double rate) {
  DriverOptions opts;
  opts.arrival = DriverOptions::Arrival::kOpenLoop;
  opts.request_rate = rate;
  return opts;
}

DriverOptions ClosedLoop(std::size_t concurrency) {
  DriverOptions opts;
  opts.arrival = DriverOptions::Arrival::kClosedLoop;
  opts.concurrency = concurrency;
  return opts;
}

ExperimentResult RunExperiment(const WorkloadBundle& bundle,
                               const ExperimentConfig& config) {
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent;
  const DeploymentConfig gpu_config = config.gpu.value_or(
      config.system == System::kVanilla || config.system == System::kExact
          ? DeploymentConfig::AgentOnly()
          : DeploymentConfig::Colocated80_20());
  ColocationSimulator gpu(gpu_config);
  RemoteDataService service(config.service);

  const double capacity =
      std::max(1.0, config.cache_ratio * bundle.TotalKnowledgeTokens());
  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};

  std::unique_ptr<ToolResolver> resolver;
  std::unique_ptr<CortexEngine> engine;
  CortexResolver* cortex_resolver = nullptr;
  switch (config.system) {
    case System::kVanilla:
      resolver = std::make_unique<VanillaResolver>(env);
      break;
    case System::kExact:
      resolver = std::make_unique<ExactCacheResolver>(
          env, ExactCacheOptions{.capacity_tokens = capacity});
      break;
    case System::kAnnOnly:
    case System::kCortex: {
      CortexEngineOptions opts = config.engine;
      opts.cache.capacity_tokens = capacity;
      opts.eviction = config.eviction;
      opts.prefetch_enabled = config.prefetch_enabled;
      opts.recalibration_enabled = config.recalibration_enabled;
      opts.cache.sine.use_judger = config.system == System::kCortex;
      engine = std::make_unique<CortexEngine>(&embedder, &judger, opts);
      auto r = std::make_unique<CortexResolver>(env, engine.get());
      cortex_resolver = r.get();
      resolver = std::move(r);
      break;
    }
  }

  DriverOptions driver_opts = config.driver;
  if (!bundle.arrivals.empty() && driver_opts.explicit_arrivals.empty()) {
    driver_opts.explicit_arrivals = bundle.arrivals;
  }

  ServingDriver driver(agent, gpu, *resolver, driver_opts);
  ExperimentResult result;
  result.metrics = driver.Run(bundle.tasks);

  result.api_calls = service.total_calls();
  result.api_retries = service.total_retries();
  result.api_cost_dollars = service.total_cost_dollars();
  result.retry_ratio = service.RetryRatio();
  result.num_gpus = gpu.NumGpus();
  result.wallclock_sec =
      result.metrics.last_completion() - result.metrics.first_arrival();
  result.gpu_cost_dollars = result.wallclock_sec / 3600.0 *
                            kGpuDollarsPerHour *
                            static_cast<double>(result.num_gpus);
  if (engine) {
    result.prefetches =
        cortex_resolver ? cortex_resolver->prefetch_issued() : 0;
    result.recalibrations =
        cortex_resolver ? cortex_resolver->recalibration_rounds() : 0;
    result.evictions = engine->cache().counters().evictions;
    result.expirations = engine->cache().counters().expirations;
    result.final_tau_lsm = engine->cache().sine().options().tau_lsm;
  }
  return result;
}

}  // namespace cortex::bench
