#!/usr/bin/env python3
"""Self-test for scripts/cortex_lint.py: every rule fires on a seeded
violation, comment/string stripping holds, allow() suppresses, and stale
or unknown allow() annotations are themselves violations.

Run directly (python3 scripts/test_cortex_lint.py) or via ctest.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import cortex_lint  # noqa: E402


def lint_text(text: str, rel: str = "src/core/sample.cc") -> list[str]:
    """Lints `text` as if it lived at `rel` inside a temp tree."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return [v.split(str(path) + ":", 1)[1] for v in
                cortex_lint.lint_file(path)]


class RuleFiringTest(unittest.TestCase):
    def test_assert_fires(self):
        out = lint_text("void f() { assert(x); }\n")
        self.assertEqual(len(out), 1)
        self.assertIn("[assert]", out[0])

    def test_static_assert_is_not_assert(self):
        self.assertEqual(lint_text("static_assert(sizeof(int) == 4);\n"), [])

    def test_determinism_fires_on_rand_and_wall_clock(self):
        out = lint_text("int a = rand();\nlong t = time(nullptr);\n")
        self.assertEqual(len(out), 2)
        self.assertTrue(all("[determinism]" in v for v in out))

    def test_iostream_fires(self):
        out = lint_text('#include <iostream>\n')
        self.assertEqual(len(out), 1)
        self.assertIn("[iostream]", out[0])

    def test_atomic_counter_fires_only_in_serving_path(self):
        src = "std::atomic<std::uint64_t> hits_{0};\n"
        self.assertEqual(len(lint_text(src, "src/serve/s.h")), 1)
        # Outside serve/core the rule does not apply.
        self.assertEqual(lint_text(src, "src/ann/s.h"), [])
        # telemetry/ implements the sanctioned counters.
        self.assertEqual(lint_text(src, "src/telemetry/s.h"), [])

    def test_simd_intrinsics_fires_outside_kernel_layer(self):
        src = "#include <immintrin.h>\n"
        self.assertEqual(len(lint_text(src, "src/ann/fast.cc")), 1)
        self.assertEqual(
            lint_text(src, "src/embedding/simd_kernels.cc"), [])

    def test_gpu_choke_point_fires_outside_pipeline(self):
        src = "BatchingServer gpu_;\ngpu_.Dispatch(now, cost);\n"
        out = lint_text(src, "src/serve/server.cc")
        self.assertEqual(len(out), 1)
        self.assertIn("[gpu-choke-point]", out[0])
        # The sanctioned homes: the model's own layer and the pipeline.
        self.assertEqual(lint_text(src, "src/gpu/batching_server.cc"), [])
        self.assertEqual(lint_text(src, "src/serve/batch_pipeline.cc"), [])

    def test_gpu_choke_point_ignores_options_plumbing(self):
        # BatchingServerOptions is plain config and may travel anywhere.
        self.assertEqual(
            lint_text("BatchingServerOptions gpu;\n", "src/serve/server.cc"),
            [])


class StrippingTest(unittest.TestCase):
    def test_comments_and_strings_do_not_fire(self):
        self.assertEqual(
            lint_text(
                "// assert(x) in prose is fine\n"
                'const char* s = "assert(x)";\n'
                "/* rand() in a block comment */\n"
            ),
            [],
        )


class AllowTest(unittest.TestCase):
    def test_allow_suppresses_matching_rule(self):
        out = lint_text(
            "void f() { assert(x); }  // cortex-lint: allow(assert)\n")
        self.assertEqual(out, [])

    def test_stale_allow_is_a_violation(self):
        out = lint_text("int x = 0;  // cortex-lint: allow(assert)\n")
        self.assertEqual(len(out), 1)
        self.assertIn("[stale-allow]", out[0])
        self.assertIn("suppresses nothing", out[0])

    def test_unknown_rule_allow_is_a_violation(self):
        out = lint_text(
            "void f() { assert(x); }  // cortex-lint: allow(asserts)\n")
        # The misspelled allow is flagged AND the assert still fires.
        self.assertEqual(len(out), 2)
        self.assertTrue(any("[stale-allow]" in v and "unknown rule" in v
                            for v in out))
        self.assertTrue(any("[assert]" in v for v in out))

    def test_allow_for_rule_that_does_not_apply_here_is_stale(self):
        # atomic-counter never applies outside serve/core, so the allow
        # suppresses nothing even though the pattern matches.
        out = lint_text(
            "std::atomic<std::uint64_t> n_{0};"
            "  // cortex-lint: allow(atomic-counter)\n",
            "src/ann/s.h",
        )
        self.assertEqual(len(out), 1)
        self.assertIn("[stale-allow]", out[0])


class TreeTest(unittest.TestCase):
    def test_repo_src_tree_is_clean(self):
        repo = Path(__file__).resolve().parent.parent
        self.assertEqual(cortex_lint.main([str(repo / "src")]), 0)


if __name__ == "__main__":
    unittest.main()
