#!/usr/bin/env bash
# Full correctness matrix — every leg must pass; fails on the first error.
#
#   0. static analysis, fail-fast: build only cortex_analyzer and run it
#      (lock-rank / io-under-lock / guarded-by / layering / contracts)
#      plus cortex_lint and the script self-tests — seconds, not minutes,
#      so discipline violations die before the build matrix spends CPU
#   1. gcc   Release            -Werror   build + full ctest
#   2. CORTEX_SIMD=scalar full ctest (same binaries as leg 1 — proves the
#      scalar kernel fallback serves identical results)
#   3. clang RelWithDebInfo     -Werror   -Wthread-safety build + full ctest
#      (skipped with a notice when clang is not installed)
#   4. ASan+UBSan full ctest   (CORTEX_SANITIZE=address,undefined; runs
#      under native SIMD dispatch, so the vectorized kernels' loads and
#      tails are sanitizer-checked, not just the scalar path)
#   5. TSan      full ctest    (CORTEX_SANITIZE=thread, via tsan.sh)
#   6. clang-tidy + cortex_lint + cortex_analyzer (scripts/lint.sh)
#
# Each leg uses its own build dir under build-ci/ so sanitized, Release,
# and clang objects never mix.  Pass -j<N> via CMAKE_BUILD_PARALLEL_LEVEL.
set -euo pipefail

cd "$(dirname "$0")/.."

leg() {
  echo
  echo "==== ci.sh: $1 ===="
}

run_ctest() {
  ctest --test-dir "$1" --output-on-failure
}

leg "static analysis (fail-fast)"
# Configure the gcc-release dir once; leg 1 reuses it.  Building just the
# analyzer target keeps this leg to seconds even on a cold tree.
cmake -B build-ci/gcc-release -S . \
  -DCMAKE_BUILD_TYPE=Release -DCORTEX_WERROR=ON \
  -DCMAKE_CXX_COMPILER=g++
cmake --build build-ci/gcc-release -j --target cortex_analyzer
build-ci/gcc-release/tools/cortex_analyzer --root . \
  --baseline tools/cortex_analyzer/baseline.txt
python3 scripts/cortex_lint.py src
python3 scripts/test_cortex_lint.py
python3 scripts/test_bench_diff.py

leg "gcc Release -Werror"
cmake --build build-ci/gcc-release -j
run_ctest build-ci/gcc-release

leg "CORTEX_SIMD=scalar ctest (kernel-dispatch fallback)"
CORTEX_SIMD=scalar run_ctest build-ci/gcc-release

leg "bench flywheel (fresh --json runs vs committed baselines)"
# Perf keys diff inside a wide tolerance band; deterministic keys (recall,
# virtual-clock rates, error counts) diff tightly.  See scripts/bench_diff.py.
(cd build-ci/gcc-release &&
  ./bench/bench_vector_ops --json >/dev/null &&
  ./bench/bench_concurrency --json --tasks=300 >/dev/null &&
  ./bench/bench_ann --json >/dev/null &&
  ./bench/bench_cluster --json --tasks=120 --threads=4 >/dev/null &&
  ./bench/bench_telemetry --json --iters=500000 --tasks=200 --threads=4 \
    --repeats=2 >/dev/null)
for b in vector_ops concurrency ann cluster telemetry; do
  python3 scripts/bench_diff.py "BENCH_${b}.json" \
    "build-ci/gcc-release/BENCH_${b}.json"
done

if command -v clang++ >/dev/null 2>&1; then
  leg "clang -Werror -Wthread-safety"
  cmake -B build-ci/clang -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCORTEX_WERROR=ON \
    -DCMAKE_CXX_COMPILER=clang++
  cmake --build build-ci/clang -j
  run_ctest build-ci/clang
else
  leg "clang -Werror -Wthread-safety — SKIPPED (clang++ not installed)"
fi

leg "ASan+UBSan ctest"
cmake -B build-ci/asan-ubsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCORTEX_WERROR=ON \
  -DCORTEX_SANITIZE=address,undefined
cmake --build build-ci/asan-ubsan -j
# Fast-fail on the concurrency-heavy serving/telemetry tests before the
# full sweep — they are the likeliest sanitizer tripwires.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-ci/asan-ubsan --output-on-failure \
    -R 'Telemetry|ConcurrentEngine|ServerEndToEnd'
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  run_ctest build-ci/asan-ubsan

leg "TSan ctest"
scripts/tsan.sh -R 'Telemetry|ConcurrentEngine|ServerEndToEnd'
scripts/tsan.sh

leg "clang-tidy + cortex_lint + cortex_analyzer"
# lint.sh needs a configured build dir for compile_commands.json.
scripts/lint.sh build-ci/gcc-release

echo
echo "ci.sh: ALL LEGS PASSED"
