#!/usr/bin/env bash
# Correctness matrix, split into named legs so the hosted pipeline
# (.github/workflows/ci.yml) can run them as parallel jobs while one
# local invocation still sweeps everything in order.
#
# Legs (run in this order when none is selected):
#   analyze  static analysis, fail-fast: build only cortex_analyzer and
#            run it (lock-rank / io-under-lock / guarded-by / layering /
#            contracts) plus cortex_lint and the script self-tests —
#            seconds, not minutes, so discipline violations die before
#            the build matrix spends CPU
#   build    gcc Release -Werror build + full ctest
#   scalar   CORTEX_SIMD=scalar full ctest on the same binaries — proves
#            the scalar kernel fallback serves identical results
#   bench    fresh --json bench runs diffed against committed baselines
#            (perf keys inside a wide tolerance band; deterministic keys
#            tightly — see scripts/bench_diff.py)
#   clang    clang RelWithDebInfo -Werror -Wthread-safety build + ctest
#            (skipped with a notice when clang++ is not installed)
#   asan     ASan+UBSan full ctest (CORTEX_SANITIZE=address,undefined;
#            native SIMD dispatch, so the vectorized kernels' loads and
#            tails are sanitizer-checked, not just the scalar path)
#   tsan     TSan full ctest (CORTEX_SANITIZE=thread, via tsan.sh)
#   lint     clang-tidy + cortex_lint + cortex_analyzer (scripts/lint.sh)
#
# Usage:
#   scripts/ci.sh                    # every leg
#   scripts/ci.sh --leg asan         # one leg; --leg is repeatable
#   scripts/ci.sh --quick            # analyze + build + scalar
#
# Build dirs live under $CORTEX_CI_DIR (default build-ci/), one per
# toolchain/sanitizer so objects never mix.  Legs that need the gcc
# Release binaries (scalar, bench, lint) build them on demand, so every
# leg is self-contained — exactly what an isolated CI job needs.  Pass
# -j<N> via CMAKE_BUILD_PARALLEL_LEVEL.  A per-leg wall-clock table
# prints on exit, pass or fail.
set -euo pipefail

cd "$(dirname "$0")/.."

CI_DIR="${CORTEX_CI_DIR:-build-ci}"
ALL_LEGS=(analyze build scalar bench clang asan tsan lint)

usage() {
  cat <<EOF
usage: scripts/ci.sh [--leg NAME]... [--quick]
  legs: ${ALL_LEGS[*]}
  --quick = analyze + build + scalar
  CORTEX_CI_DIR overrides the build-dir root (default build-ci)
EOF
  exit "${1:-0}"
}

leg_banner() {
  echo
  echo "==== ci.sh: $1 ===="
}

run_ctest() {
  ctest --test-dir "$1" --output-on-failure
}

# Configure + build the shared gcc Release tree.  Idempotent: warm
# object caches (ccache in CI) make repeat calls cheap, so dependent
# legs can call it unconditionally.
ensure_release() {
  cmake -B "$CI_DIR/gcc-release" -S . \
    -DCMAKE_BUILD_TYPE=Release -DCORTEX_WERROR=ON \
    -DCMAKE_CXX_COMPILER=g++
  cmake --build "$CI_DIR/gcc-release" -j
}

leg_analyze() {
  # Building just the analyzer target keeps this leg to seconds even on
  # a cold tree.
  cmake -B "$CI_DIR/gcc-release" -S . \
    -DCMAKE_BUILD_TYPE=Release -DCORTEX_WERROR=ON \
    -DCMAKE_CXX_COMPILER=g++
  cmake --build "$CI_DIR/gcc-release" -j --target cortex_analyzer
  "$CI_DIR/gcc-release/tools/cortex_analyzer" --root . \
    --baseline tools/cortex_analyzer/baseline.txt
  python3 scripts/cortex_lint.py src
  python3 scripts/test_cortex_lint.py
  python3 scripts/test_bench_diff.py
}

leg_build() {
  ensure_release
  run_ctest "$CI_DIR/gcc-release"
}

leg_scalar() {
  ensure_release
  CORTEX_SIMD=scalar run_ctest "$CI_DIR/gcc-release"
}

leg_bench() {
  ensure_release
  (cd "$CI_DIR/gcc-release" &&
    ./bench/bench_vector_ops --json >/dev/null &&
    ./bench/bench_concurrency --json --tasks=300 >/dev/null &&
    ./bench/bench_concurrency --json --probe-scaling --tasks=120 \
      --lookups-per-thread=1000 >/dev/null &&
    ./bench/bench_concurrency --json --pipeline --tasks=200 \
      --lookups-per-thread=250 >/dev/null &&
    ./bench/bench_ann --json >/dev/null &&
    ./bench/bench_cluster --json --tasks=120 --threads=4 >/dev/null &&
    ./bench/bench_telemetry --json --iters=500000 --tasks=200 --threads=4 \
      --repeats=2 >/dev/null)
  local b
  for b in vector_ops concurrency concurrency_probe concurrency_pipeline \
           ann cluster telemetry; do
    python3 scripts/bench_diff.py "BENCH_${b}.json" \
      "$CI_DIR/gcc-release/BENCH_${b}.json"
  done
}

leg_clang() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "ci.sh: clang++ not installed — leg skipped"
    return 0
  fi
  cmake -B "$CI_DIR/clang" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCORTEX_WERROR=ON \
    -DCMAKE_CXX_COMPILER=clang++
  cmake --build "$CI_DIR/clang" -j
  run_ctest "$CI_DIR/clang"
}

leg_asan() {
  cmake -B "$CI_DIR/asan-ubsan" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCORTEX_WERROR=ON \
    -DCORTEX_SANITIZE=address,undefined
  cmake --build "$CI_DIR/asan-ubsan" -j
  # Fast-fail on the concurrency-heavy serving/telemetry tests before
  # the full sweep — they are the likeliest sanitizer tripwires.
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$CI_DIR/asan-ubsan" --output-on-failure \
      -R 'Telemetry|ConcurrentEngine|ServerEndToEnd|Epoch'
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    run_ctest "$CI_DIR/asan-ubsan"
}

leg_tsan() {
  scripts/tsan.sh -R 'Telemetry|ConcurrentEngine|ServerEndToEnd|Epoch'
  scripts/tsan.sh
}

leg_lint() {
  # lint.sh needs a configured build dir for compile_commands.json.
  ensure_release
  scripts/lint.sh "$CI_DIR/gcc-release"
}

# ------------------------------------------------------------ arguments
selected=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --leg)
      [[ $# -ge 2 ]] || { echo "ci.sh: --leg needs a name" >&2; exit 2; }
      selected+=("$2")
      shift 2
      ;;
    --quick)
      selected+=(analyze build scalar)
      shift
      ;;
    -h|--help)
      usage 0
      ;;
    *)
      echo "ci.sh: unknown argument '$1'" >&2
      usage 2
      ;;
  esac
done
[[ ${#selected[@]} -gt 0 ]] || selected=("${ALL_LEGS[@]}")

for name in "${selected[@]}"; do
  ok=0
  for l in "${ALL_LEGS[@]}"; do [[ "$l" == "$name" ]] && ok=1; done
  if [[ "$ok" -ne 1 ]]; then
    echo "ci.sh: unknown leg '$name' (legs: ${ALL_LEGS[*]})" >&2
    exit 2
  fi
done

# ------------------------------------------------------------- run legs
summary_names=()
summary_secs=()
summary_status=()

print_summary() {
  [[ ${#summary_names[@]} -gt 0 ]] || return 0
  echo
  echo "==== ci.sh: leg summary ===="
  printf '%-10s %8s  %s\n' "leg" "wall(s)" "status"
  local i
  for i in "${!summary_names[@]}"; do
    printf '%-10s %8s  %s\n' \
      "${summary_names[$i]}" "${summary_secs[$i]}" "${summary_status[$i]}"
  done
}
trap print_summary EXIT

for name in "${selected[@]}"; do
  leg_banner "$name"
  SECONDS=0
  # Subshell with its own errexit: a failure on ANY command inside the
  # leg fails the leg (a bare `leg_x || ...` would suspend -e inside the
  # function body and let later commands mask the failure).
  set +e
  (set -e; "leg_$name")
  rc=$?
  set -e
  summary_names+=("$name")
  summary_secs+=("$SECONDS")
  if [[ "$rc" -ne 0 ]]; then
    summary_status+=("FAIL")
    echo "ci.sh: leg '$name' FAILED" >&2
    exit 1
  fi
  summary_status+=("PASS")
done

echo
echo "ci.sh: ALL SELECTED LEGS PASSED (${selected[*]})"
