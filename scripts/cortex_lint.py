#!/usr/bin/env python3
"""cortex_lint: repo-invariant linter for library code under src/.

Rules (see DESIGN.md §7):
  assert      no raw assert()/ <cassert> — use CHECK/DCHECK (util/check.h),
              which stay armed under NDEBUG.
  determinism no rand()/srand()/time(nullptr)/time(NULL) — every stochastic
              component draws from a seeded cortex::Rng and every clock is
              injected, so runs are reproducible bit-for-bit.
  iostream    no std::cout/std::cerr/std::clog or <iostream> in library
              code — libraries return data; tools/, examples/, bench/ own
              the terminal.
  atomic-counter
              (src/serve/ and src/core/ only, src/telemetry/ exempt) no
              ad-hoc std::atomic<integer> stat counters — stats belong on
              the telemetry registry (telemetry::Counter / Gauge,
              src/telemetry/metrics.h) so they show up in STATS dumps.
  simd-intrinsics
              no <immintrin.h>/<x86intrin.h>/<arm_neon.h> outside
              src/embedding/simd_kernels.* — raw intrinsics go through the
              runtime-dispatched kernel layer (embedding/simd_kernels.h) so
              CORTEX_SIMD pinning and the scalar CI leg stay meaningful.
  gpu-choke-point
              no direct BatchingServer use outside src/gpu/ and
              serve/batch_pipeline.* — every judger admission from the
              serving tier goes through the batching pipeline's single
              dispatch point (DESIGN.md §14), so batch occupancy and queue
              delay stay observable and arrivals stay non-decreasing.
              (BatchingServerOptions is plain config and may be plumbed
              anywhere.)

A line may opt out with:  // cortex-lint: allow(<rule>)
Comments and string literals are stripped before matching, so prose about
assert() is fine.  Opt-outs are themselves checked: an allow() naming an
unknown rule, or naming a rule that would not fire on its line anyway, is
a `stale-allow` violation — suppressions must never outlive the code they
excuse.

Usage: cortex_lint.py [paths...]   (default: src)
Exit status: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cc", ".h", ".hpp", ".cpp"}


def _in_serving_path(path: Path) -> bool:
    """True for src/serve/ and src/core/ files, excluding src/telemetry/
    (which implements the sanctioned counters)."""
    posix = path.as_posix()
    if "/telemetry/" in posix or posix.startswith("telemetry/"):
        return False
    return any(
        seg in posix or posix.startswith(seg.lstrip("/"))
        for seg in ("/serve/", "/core/")
    )


def _outside_simd_kernel_layer(path: Path) -> bool:
    """True everywhere except src/embedding/simd_kernels.{h,cc}."""
    return not path.name.startswith("simd_kernels")


def _outside_gpu_choke_point(path: Path) -> bool:
    """True everywhere except src/gpu/ (the model's home) and
    serve/batch_pipeline.{h,cc} (the serving tier's single dispatch
    point)."""
    posix = path.as_posix()
    if "/gpu/" in posix or posix.startswith("gpu/"):
        return False
    return not path.name.startswith("batch_pipeline")


# (rule, pattern, hint, path_predicate) — predicate None means "all files".
RULES = [
    (
        "assert",
        re.compile(r"(?<![\w])assert\s*\(|#\s*include\s*<(?:cassert|assert\.h)>"),
        "raw assert() / <cassert>: use CHECK/DCHECK from util/check.h",
        None,
    ),
    (
        "determinism",
        re.compile(
            r"(?<![\w:.])(?:rand|srand)\s*\(|"
            r"(?<![\w:.])time\s*\(\s*(?:nullptr|NULL)\s*\)"
        ),
        "non-deterministic source: use a seeded cortex::Rng / injected clock",
        None,
    ),
    (
        "iostream",
        re.compile(
            r"std\s*::\s*(?:cout|cerr|clog)\b|#\s*include\s*<iostream>"
        ),
        "iostream write in library code: return data, let tools/ print",
        None,
    ),
    (
        "atomic-counter",
        re.compile(
            r"std\s*::\s*atomic\s*<\s*(?:std\s*::\s*)?"
            r"(?:u?int(?:8|16|32|64)_t|size_t)\s*>"
        ),
        "ad-hoc atomic stat counter in the serving path: publish it on the "
        "telemetry registry instead (telemetry::Counter / Gauge, "
        "src/telemetry/metrics.h)",
        _in_serving_path,
    ),
    (
        "simd-intrinsics",
        re.compile(
            r"#\s*include\s*<(?:immintrin\.h|x86intrin\.h|arm_neon\.h)>"
        ),
        "raw SIMD intrinsics header outside the kernel layer: go through "
        "the dispatch wrappers in embedding/simd_kernels.h",
        _outside_simd_kernel_layer,
    ),
    (
        "gpu-choke-point",
        re.compile(r"\bBatchingServer\b(?!Options)"),
        "direct BatchingServer use outside the batching pipeline: judger "
        "admission goes through serve/batch_pipeline's single dispatch "
        "point (DESIGN.md §14)",
        _outside_gpu_choke_point,
    ),
]

ALLOW_RE = re.compile(r"cortex-lint:\s*allow\(([a-z\-,\s]+)\)")

RULES_BY_NAME = {rule: (pattern, applies_to) for rule, pattern, _, applies_to in RULES}

# `static_assert` is a keyword, not the macro; the negative look-behind in
# the assert rule already skips it via the preceding 'c' of "static_".


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines
    (so reported line numbers stay valid) and preserving the text of
    line comments' lint directives separately."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":  # block comment
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path: Path) -> list[str]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    violations = []
    for lineno, (code, original) in enumerate(
        zip(code_lines, raw_lines), start=1
    ):
        allowed = set()
        m = ALLOW_RE.search(original)
        if m:
            allowed = {r.strip() for r in m.group(1).split(",")}
        for rule, pattern, hint, applies_to in RULES:
            if rule in allowed:
                continue
            if applies_to is not None and not applies_to(path):
                continue
            if pattern.search(code):
                violations.append(f"{path}:{lineno}: [{rule}] {hint}")
        # A suppression must excuse something: every allow()'d rule has to
        # be a real rule that would have fired on this very line.
        for rule in sorted(allowed):
            entry = RULES_BY_NAME.get(rule)
            if entry is None:
                violations.append(
                    f"{path}:{lineno}: [stale-allow] cortex-lint: "
                    f"allow({rule}) names an unknown rule"
                )
                continue
            pattern, applies_to = entry
            fires = (
                applies_to is None or applies_to(path)
            ) and pattern.search(code)
            if not fires:
                violations.append(
                    f"{path}:{lineno}: [stale-allow] cortex-lint: "
                    f"allow({rule}) suppresses nothing on this line; "
                    f"remove the comment"
                )
    return violations


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in (argv or ["src"])]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(
                p
                for p in sorted(root.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES
            )
        else:
            print(f"cortex_lint: no such path: {root}", file=sys.stderr)
            return 2

    all_violations: list[str] = []
    for f in files:
        all_violations.extend(lint_file(f))

    for v in all_violations:
        print(v)
    if all_violations:
        print(
            f"cortex_lint: {len(all_violations)} violation(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"cortex_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
