#!/usr/bin/env bash
# Static lint gate, one command for everything that reads source without
# running it:
#
#   * clang-tidy       checks from .clang-tidy (skipped with a notice
#                      when clang-tidy is not installed — CI images with
#                      clang get the full gate)
#   * cortex_lint      repo-invariant regex linter (scripts/cortex_lint.py)
#   * cortex_analyzer  whole-repo lock-discipline / layering / contract
#                      analyzer (tools/cortex_analyzer; built on demand
#                      from the given build dir, skipped with a notice
#                      when the dir is not configured)
#
# Every violation prints as file:line: [check] message, so editors and CI
# annotate them the same way.  Exits non-zero if any leg fails.
#
# clang-tidy needs a compile_commands.json; CMake exports one into build/
# (CMAKE_EXPORT_COMPILE_COMMANDS is on by default for this project).
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

fail=0

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "lint.sh: $BUILD_DIR/compile_commands.json missing;" \
         "configure first: cmake -B $BUILD_DIR -S ." >&2
    exit 2
  fi
  # All first-party translation units; headers are covered via
  # HeaderFilterRegex in .clang-tidy.
  mapfile -t sources < <(find src -name '*.cc' | sort)
  echo "lint.sh: clang-tidy over ${#sources[@]} files"
  clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}" || fail=1
else
  echo "lint.sh: clang-tidy not found — skipping tidy leg" >&2
fi

python3 scripts/cortex_lint.py src || fail=1

if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake --build "$BUILD_DIR" --target cortex_analyzer >/dev/null
  "$BUILD_DIR/tools/cortex_analyzer" --root . \
    --baseline tools/cortex_analyzer/baseline.txt || fail=1
else
  echo "lint.sh: $BUILD_DIR not configured — skipping cortex_analyzer" \
       "(cmake -B $BUILD_DIR -S . to enable)" >&2
fi

if [[ "$fail" -ne 0 ]]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: OK"
