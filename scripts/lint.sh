#!/usr/bin/env bash
# Static lint gate: clang-tidy (checks from .clang-tidy) + the repo's own
# invariant linter (scripts/cortex_lint.py).  Exits non-zero on the first
# violation.
#
# clang-tidy needs a compile_commands.json; CMake exports one into build/
# (CMAKE_EXPORT_COMPILE_COMMANDS is on by default for this project).  When
# clang-tidy is not installed the tidy leg is skipped with a notice so the
# repo lint still gates — CI images with clang get the full gate.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

fail=0

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "lint.sh: $BUILD_DIR/compile_commands.json missing;" \
         "configure first: cmake -B $BUILD_DIR -S ." >&2
    exit 2
  fi
  # All first-party translation units; headers are covered via
  # HeaderFilterRegex in .clang-tidy.
  mapfile -t sources < <(find src -name '*.cc' | sort)
  echo "lint.sh: clang-tidy over ${#sources[@]} files"
  clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}" || fail=1
else
  echo "lint.sh: clang-tidy not found — skipping tidy leg" >&2
fi

python3 scripts/cortex_lint.py src || fail=1

if [[ "$fail" -ne 0 ]]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: OK"
