#!/usr/bin/env python3
"""Compare a fresh bench --json output against its committed baseline.

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--rel-tol R] [--abs-tol A]

Structure is compared exactly: both files must have the same keys, the
same array lengths, and equal strings.  Numbers pass when

    |a - b| <= abs_tol + rel_tol * max(|a|, |b|)

with the band chosen per key name:

  * wall-clock / machine-dependent keys (throughput, *_rps, qps, ns_per*,
    gb_per*, speedup, seconds, latency, hit_rate, entries, bytes) get the
    WIDE band (default rel 0.75) — these guard against collapse, not noise;
  * everything else (recall, rates on the virtual clock, counts, config
    echo-back like tasks/threads/dim) gets the TIGHT band (rel 0.02),
    because those values are deterministic replays and should not move
    unless the algorithm changed.

Strings under VOLATILE_STRING_KEYS (e.g. active_variant — the SIMD level
differs per machine) only warn on mismatch.

stdlib only; exit 0 = within band, 1 = regression/shape mismatch.
"""

import argparse
import json
import re
import sys

WIDE_KEY_RE = re.compile(
    r"(throughput|_rps|qps|ns_per|gb_per|per_sec|speedup|seconds|latency"
    r"|hit_rate|entries|bytes)",
    re.IGNORECASE,
)
VOLATILE_STRING_KEYS = {"active_variant"}

TIGHT_REL = 0.02
TIGHT_ABS = 1e-9


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def diff(base, cand, path, key, errors, warnings, wide_rel, wide_abs):
    if is_number(base) and is_number(cand):
        wide = bool(key and WIDE_KEY_RE.search(key))
        rel, tol_abs = (wide_rel, wide_abs) if wide else (TIGHT_REL, TIGHT_ABS)
        band = tol_abs + rel * max(abs(base), abs(cand))
        if abs(base - cand) > band:
            errors.append(
                f"{path}: {cand!r} outside {'wide' if wide else 'tight'} band"
                f" of baseline {base!r} (|delta| {abs(base - cand):.6g} >"
                f" {band:.6g})"
            )
        return
    if type(base) is not type(cand):
        errors.append(
            f"{path}: type changed {type(base).__name__} ->"
            f" {type(cand).__name__}"
        )
        return
    if isinstance(base, dict):
        for missing in sorted(base.keys() - cand.keys()):
            errors.append(f"{path}.{missing}: missing from candidate")
        for added in sorted(cand.keys() - base.keys()):
            errors.append(f"{path}.{added}: not in baseline")
        for k in sorted(base.keys() & cand.keys()):
            diff(base[k], cand[k], f"{path}.{k}", k, errors, warnings,
                 wide_rel, wide_abs)
    elif isinstance(base, list):
        if len(base) != len(cand):
            errors.append(
                f"{path}: length changed {len(base)} -> {len(cand)}"
            )
            return
        for i, (b, c) in enumerate(zip(base, cand)):
            diff(b, c, f"{path}[{i}]", key, errors, warnings, wide_rel,
                 wide_abs)
    elif base != cand:
        if key in VOLATILE_STRING_KEYS:
            warnings.append(f"{path}: {base!r} -> {cand!r} (volatile, ok)")
        else:
            errors.append(f"{path}: {base!r} != {cand!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--rel-tol", type=float, default=0.75,
                    help="relative tolerance for wall-clock keys")
    ap.add_argument("--abs-tol", type=float, default=1e-6,
                    help="absolute tolerance for wall-clock keys")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.candidate) as f:
            cand = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 1

    errors, warnings = [], []
    diff(base, cand, "$", None, errors, warnings, args.rel_tol, args.abs_tol)

    name = base.get("benchmark", args.baseline) if isinstance(base, dict) \
        else args.baseline
    for w in warnings:
        print(f"bench_diff [{name}]: note: {w}")
    if errors:
        for e in errors:
            print(f"bench_diff [{name}]: FAIL: {e}", file=sys.stderr)
        print(f"bench_diff [{name}]: {len(errors)} value(s) outside the"
              " tolerance band vs the committed baseline. If the change is"
              " intentional, regenerate with --json and commit the new"
              " baseline.", file=sys.stderr)
        return 1
    print(f"bench_diff [{name}]: OK ({args.candidate} within band of"
          f" {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
