#!/usr/bin/env python3
"""Self-test for scripts/bench_diff.py: wide vs tight band selection,
shape mismatches (missing/added keys, list lengths, type changes),
volatile-string handling, and end-to-end exit codes.

Run directly (python3 scripts/test_bench_diff.py) or via ctest.
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path
from unittest import mock

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_diff  # noqa: E402

WIDE_REL = 0.75
WIDE_ABS = 1e-6


def run_diff(base, cand):
    errors, warnings = [], []
    bench_diff.diff(base, cand, "$", None, errors, warnings,
                    WIDE_REL, WIDE_ABS)
    return errors, warnings


class BandSelectionTest(unittest.TestCase):
    def test_wide_key_regex_classification(self):
        for key in ("throughput", "lookup_rps", "qps", "ns_per_call",
                    "gb_per_sec", "speedup", "p99_seconds", "latency",
                    "hit_rate", "entries", "bytes_sent"):
            self.assertTrue(bench_diff.WIDE_KEY_RE.search(key), key)
        for key in ("recall_at_10", "tasks", "threads", "dim", "errors"):
            self.assertFalse(bench_diff.WIDE_KEY_RE.search(key), key)

    def test_tight_band_rejects_small_drift(self):
        # recall is deterministic: 2% rel tolerance.
        errors, _ = run_diff({"recall_at_10": 0.90}, {"recall_at_10": 0.91})
        self.assertEqual(errors, [])
        errors, _ = run_diff({"recall_at_10": 0.90}, {"recall_at_10": 0.80})
        self.assertEqual(len(errors), 1)
        self.assertIn("tight band", errors[0])

    def test_wide_band_tolerates_machine_noise_not_collapse(self):
        # throughput is wall-clock: 75% rel tolerance guards collapse only.
        errors, _ = run_diff({"throughput": 100.0}, {"throughput": 60.0})
        self.assertEqual(errors, [])
        errors, _ = run_diff({"throughput": 100.0}, {"throughput": 10.0})
        self.assertEqual(len(errors), 1)
        self.assertIn("wide band", errors[0])

    def test_nested_key_controls_band(self):
        base = {"lookup": {"p99_seconds": 1.0, "recall": 1.0}}
        cand = {"lookup": {"p99_seconds": 1.5, "recall": 0.9}}
        errors, _ = run_diff(base, cand)
        # p99_seconds (wide) passes at +50%; recall (tight) fails at -10%.
        self.assertEqual(len(errors), 1)
        self.assertIn("recall", errors[0])


class ShapeMismatchTest(unittest.TestCase):
    def test_missing_and_added_keys(self):
        errors, _ = run_diff({"a": 1, "b": 2}, {"b": 2, "c": 3})
        self.assertEqual(len(errors), 2)
        self.assertTrue(any("missing from candidate" in e for e in errors))
        self.assertTrue(any("not in baseline" in e for e in errors))

    def test_list_length_change(self):
        errors, _ = run_diff({"xs": [1, 2, 3]}, {"xs": [1, 2]})
        self.assertEqual(len(errors), 1)
        self.assertIn("length changed 3 -> 2", errors[0])

    def test_type_change(self):
        errors, _ = run_diff({"a": 1}, {"a": "1"})
        self.assertEqual(len(errors), 1)
        self.assertIn("type changed", errors[0])

    def test_list_elements_inherit_enclosing_key(self):
        errors, _ = run_diff({"entries": [100]}, {"entries": [60]})
        self.assertEqual(errors, [])  # wide key -> 40% drop is in band

    def test_volatile_string_warns_instead_of_failing(self):
        errors, warnings = run_diff({"active_variant": "avx2"},
                                    {"active_variant": "scalar"})
        self.assertEqual(errors, [])
        self.assertEqual(len(warnings), 1)

    def test_other_string_mismatch_fails(self):
        errors, _ = run_diff({"benchmark": "ann"}, {"benchmark": "ivf"})
        self.assertEqual(len(errors), 1)


class EndToEndTest(unittest.TestCase):
    def run_main(self, base, cand):
        with tempfile.TemporaryDirectory() as tmp:
            bp = Path(tmp) / "base.json"
            cp = Path(tmp) / "cand.json"
            bp.write_text(json.dumps(base))
            cp.write_text(json.dumps(cand))
            with mock.patch.object(sys, "argv",
                                   ["bench_diff.py", str(bp), str(cp)]):
                return bench_diff.main()

    def test_within_band_exits_zero(self):
        base = {"benchmark": "ann", "recall": 0.95, "qps": 1000.0}
        cand = {"benchmark": "ann", "recall": 0.95, "qps": 700.0}
        self.assertEqual(self.run_main(base, cand), 0)

    def test_regression_exits_one(self):
        base = {"benchmark": "ann", "recall": 0.95, "qps": 1000.0}
        cand = {"benchmark": "ann", "recall": 0.70, "qps": 1000.0}
        self.assertEqual(self.run_main(base, cand), 1)

    def test_missing_file_exits_one(self):
        with mock.patch.object(sys, "argv",
                               ["bench_diff.py", "/nonexistent.json",
                                "/also-nonexistent.json"]):
            self.assertEqual(bench_diff.main(), 1)


if __name__ == "__main__":
    unittest.main()
