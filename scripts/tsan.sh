#!/usr/bin/env bash
# Builds the serving-layer concurrency tests under ThreadSanitizer and runs
# them.  Uses a dedicated build dir so sanitized objects never mix with the
# regular build.
#
# Usage: scripts/tsan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" -S . -DCORTEX_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
  --target test_concurrent_engine test_server_protocol

cd "$BUILD_DIR"
ctest --output-on-failure -R 'ConcurrentEngine|Frame|Grammar|ServerEndToEnd' "$@"
