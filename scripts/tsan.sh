#!/usr/bin/env bash
# Builds the ENTIRE test suite under ThreadSanitizer and runs all of it.
# Uses a dedicated build dir so sanitized objects never mix with the
# regular build.
#
# A suppressions file (scripts/tsan.supp) is honoured if present, but it
# must only ever contain entries for findings triaged as true
# false-positives — real races get fixed, not suppressed.
#
# Usage: scripts/tsan.sh [extra ctest args...]
# Honours CORTEX_CI_DIR: when set, builds in $CORTEX_CI_DIR/tsan so the
# CI matrix keeps every build tree under one root; otherwise build-tsan.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${CORTEX_CI_DIR:+${CORTEX_CI_DIR}/tsan}"
BUILD_DIR="${BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DCORTEX_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j

TSAN_OPTIONS="halt_on_error=1"
if [[ -f scripts/tsan.supp ]]; then
  TSAN_OPTIONS="$TSAN_OPTIONS suppressions=$PWD/scripts/tsan.supp"
fi
export TSAN_OPTIONS

cd "$BUILD_DIR"
ctest --output-on-failure "$@"
