#include "cortex_analyzer/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

namespace cortex::analyzer {

namespace fs = std::filesystem;

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

// ------------------------------------------------------------- layering
// Allowed #include targets per src/ directory.  A directory absent from
// the table is unconstrained (and never constrains others).
const std::map<std::string, std::set<std::string>>& LayerTable() {
  static const std::map<std::string, std::set<std::string>> kTable = {
      {"util", {"util"}},
      {"embedding", {"util", "embedding"}},
      {"ann", {"util", "embedding", "ann"}},
      {"llm", {"util", "llm"}},
      {"telemetry", {"util", "telemetry"}},
      {"net", {"util", "telemetry", "net"}},
      {"tenant", {"util", "telemetry", "net", "tenant"}},
      {"gpu", {"util", "llm", "gpu"}},
      {"workload", {"util", "llm", "workload"}},
      {"sim", {"util", "llm", "net", "gpu", "sim"}},
      {"core",
       {"util", "embedding", "ann", "llm", "net", "gpu", "sim", "workload",
        "core"}},
      {"serve",
       {"util", "embedding", "ann", "llm", "net", "gpu", "sim", "workload",
        "core", "telemetry", "tenant", "serve"}},
      {"cluster",
       {"util", "embedding", "ann", "llm", "net", "gpu", "sim", "workload",
        "core", "telemetry", "tenant", "serve", "cluster"}},
  };
  return kTable;
}

const std::set<std::string>& BlockingSyscalls() {
  static const std::set<std::string> kCalls = {
      "send",   "recv",     "connect", "accept",   "read",
      "write",  "poll",     "select",  "sendmsg",  "recvmsg",
      "sendto", "recvfrom", "fsync",   "open",     "openat"};
  return kCalls;
}

// Layer of a repo-relative path ("src/serve/server.cc" -> "serve");
// empty when not under src/ or not in the table's shape.
std::string LayerOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

// Layer of an include path ("util/check.h" -> "util").
std::string IncludeLayer(const std::string& path) {
  const std::size_t slash = path.find('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

int SegmentCount(const std::string& s) {
  return 1 + static_cast<int>(std::count(s.begin(), s.end(), '_'));
}

// ----------------------------------------------------------- call graph
class CallGraph {
 public:
  explicit CallGraph(Model& model) : model_(model) {
    for (auto& f : model.functions) {
      by_name_[f->name].push_back(f.get());
      by_qual_[f->QualifiedName()].push_back(f.get());
    }
  }

  // Bodies this call site may enter.  Conservative where resolution is
  // reliable, empty where it is not (unresolvable receivers, std::,
  // syscalls) — see DESIGN.md §11 for the soundness trade.
  std::vector<FunctionInfo*> Resolve(const FunctionInfo& caller,
                                     const CallSite& cs) {
    if (cs.global_qualified) return {};
    if (!cs.qualifier.empty()) {
      if (cs.qualifier == "std") return {};
      return Lookup(cs.qualifier, cs.callee);
    }
    if (!cs.obj.empty()) {
      if (cs.obj == "<expr>") return {};
      if (cs.obj == "this" && !caller.cls.empty())
        return Lookup(caller.cls, cs.callee);
      const ClassInfo* oc = VarClass(caller, cs.obj);
      if (!oc) return {};
      if (!oc->method_names.count(cs.callee)) return {};
      return Lookup(oc->name, cs.callee);
    }
    // Plain call: same-class method first, then a free function.
    if (!caller.cls.empty()) {
      ClassInfo* ci = model_.FindClass(caller.cls);
      if (ci && ci->method_names.count(cs.callee))
        return Lookup(caller.cls, cs.callee);
    }
    auto it = by_qual_.find(cs.callee);
    if (it != by_qual_.end()) return it->second;
    return {};
  }

 private:
  std::vector<FunctionInfo*> Lookup(const std::string& cls,
                                    const std::string& name) {
    auto it = by_qual_.find(cls + "::" + name);
    if (it != by_qual_.end()) return it->second;
    return {};
  }

  const ClassInfo* VarClass(const FunctionInfo& fn, const std::string& var) {
    std::string type;
    auto lt = fn.local_types.find(var);
    if (lt != fn.local_types.end()) type = lt->second;
    if (type.empty()) {
      auto pt = fn.param_types.find(var);
      if (pt != fn.param_types.end()) type = pt->second;
    }
    if (type.empty() && !fn.cls.empty()) {
      if (ClassInfo* ci = model_.FindClass(fn.cls)) {
        auto mt = ci->member_types.find(var);
        if (mt != ci->member_types.end()) type = mt->second;
      }
    }
    if (type.empty()) return nullptr;
    for (const auto& c : model_.classes)
      if (!c->name.empty() && type.find(c->name) != std::string::npos)
        return c.get();
    return nullptr;
  }

  Model& model_;
  std::map<std::string, std::vector<FunctionInfo*>> by_name_;
  std::map<std::string, std::vector<FunctionInfo*>> by_qual_;
};

// ------------------------------------------------------------- checks
class Checker {
 public:
  explicit Checker(Model& model) : model_(model), graph_(model) {
    for (auto& f : model.functions) {
      resolved_.emplace(f.get(), std::vector<std::vector<FunctionInfo*>>{});
      auto& per_call = resolved_[f.get()];
      per_call.reserve(f->calls.size());
      for (const auto& cs : f->calls)
        per_call.push_back(graph_.Resolve(*f, cs));
    }
  }

  std::vector<Finding> Run() {
    CheckLockRank();
    CheckIoUnderLock();
    CheckGuardedBy();
    CheckLayering();
    CheckMetricContract();
    CheckVerbContract();
    Dedup();
    return std::move(findings_);
  }

 private:
  void Add(const std::string& check, const std::string& file, int line,
           const std::string& message) {
    findings_.push_back(Finding{check, file, line, message});
  }

  void Dedup() {
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.check, a.message) <
                       std::tie(b.file, b.line, b.check, b.message);
              });
    findings_.erase(
        std::unique(findings_.begin(), findings_.end(),
                    [](const Finding& a, const Finding& b) {
                      return a.check == b.check && a.file == b.file &&
                             a.message == b.message;
                    }),
        findings_.end());
  }

  // ---------------------------------------------------------- lock-rank
  void CheckLockRank() {
    // min_acq[f]: smallest rank f may acquire, transitively.
    std::map<const FunctionInfo*, int> min_acq;
    for (auto& f : model_.functions) {
      int m = kInf;
      for (const auto& a : f->acquisitions) m = std::min(m, a.rank);
      min_acq[f.get()] = m;
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto& f : model_.functions) {
        int m = min_acq[f.get()];
        const auto& per_call = resolved_[f.get()];
        for (const auto& callees : per_call)
          for (const FunctionInfo* g : callees) m = std::min(m, min_acq[g]);
        if (m < min_acq[f.get()]) {
          min_acq[f.get()] = m;
          changed = true;
        }
      }
    }

    for (auto& f : model_.functions) {
      // Direct inversions inside one body.
      for (const auto& a : f->acquisitions) {
        if (a.held_rank >= 0 && a.rank <= a.held_rank) {
          std::ostringstream msg;
          msg << f->QualifiedName() << " acquires '" << a.lock_name
              << "' (rank " << a.rank << ") while holding '"
              << a.held_lock_name << "' (rank " << a.held_rank
              << "); ranks must be strictly increasing";
          Add("lock-rank", f->file, a.line, msg.str());
        }
      }
      // Transitive: a call under a held rank reaching a <= acquisition.
      const auto& per_call = resolved_[f.get()];
      for (std::size_t c = 0; c < f->calls.size(); ++c) {
        const CallSite& cs = f->calls[c];
        if (cs.held_rank < 0) continue;
        for (FunctionInfo* g : per_call[c]) {
          if (min_acq[g] > cs.held_rank) continue;
          std::vector<std::string> chain;
          std::set<const FunctionInfo*> visited;
          std::string leaf;
          BuildRankChain(g, cs.held_rank, min_acq, &chain, &visited, &leaf);
          std::ostringstream msg;
          msg << f->QualifiedName() << " calls " << g->QualifiedName()
              << " while holding '" << cs.held_lock_name << "' (rank "
              << cs.held_rank << "), which may acquire " << leaf
              << "; path: " << f->QualifiedName();
          for (const auto& link : chain) msg << " -> " << link;
          Add("lock-rank", f->file, cs.line, msg.str());
        }
      }
    }
  }

  // Appends the call chain from f down to an acquisition with rank <=
  // `held`; fills `leaf` with the offending lock description.
  bool BuildRankChain(FunctionInfo* f, int held,
                      std::map<const FunctionInfo*, int>& min_acq,
                      std::vector<std::string>* chain,
                      std::set<const FunctionInfo*>* visited,
                      std::string* leaf) {
    if (!visited->insert(f).second) return false;
    chain->push_back(f->QualifiedName());
    for (const auto& a : f->acquisitions) {
      if (a.rank <= held) {
        std::ostringstream os;
        os << "'" << a.lock_name << "' (rank " << a.rank << ")";
        *leaf = os.str();
        return true;
      }
    }
    const auto& per_call = resolved_[f];
    for (std::size_t c = 0; c < f->calls.size(); ++c) {
      for (FunctionInfo* g : per_call[c]) {
        if (min_acq[g] > held) continue;
        if (BuildRankChain(g, held, min_acq, chain, visited, leaf))
          return true;
      }
    }
    chain->pop_back();
    return false;
  }

  // ------------------------------------------------------ io-under-lock
  void CheckIoUnderLock() {
    // blocking[f] = f transitively reaches a ::syscall; seed describes
    // the syscall site for diagnostics.
    std::map<const FunctionInfo*, std::string> blocking;
    for (auto& f : model_.functions) {
      for (const auto& cs : f->calls) {
        if (cs.global_qualified && BlockingSyscalls().count(cs.callee)) {
          blocking[f.get()] = "::" + cs.callee;
          break;
        }
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto& f : model_.functions) {
        if (blocking.count(f.get())) continue;
        const auto& per_call = resolved_[f.get()];
        for (const auto& callees : per_call) {
          for (const FunctionInfo* g : callees) {
            auto it = blocking.find(g);
            if (it != blocking.end()) {
              blocking[f.get()] =
                  it->second + " via " + g->QualifiedName();
              changed = true;
              break;
            }
          }
          if (blocking.count(f.get())) break;
        }
      }
    }

    for (auto& f : model_.functions) {
      const auto& per_call = resolved_[f.get()];
      for (std::size_t c = 0; c < f->calls.size(); ++c) {
        const CallSite& cs = f->calls[c];
        if (cs.held_rank < 0) continue;
        if (cs.global_qualified && BlockingSyscalls().count(cs.callee)) {
          std::ostringstream msg;
          msg << f->QualifiedName() << " performs blocking ::" << cs.callee
              << " while holding '" << cs.held_lock_name << "' (rank "
              << cs.held_rank << ")";
          Add("io-under-lock", f->file, cs.line, msg.str());
          continue;
        }
        for (const FunctionInfo* g : per_call[c]) {
          auto it = blocking.find(g);
          if (it == blocking.end()) continue;
          std::ostringstream msg;
          msg << f->QualifiedName() << " calls " << g->QualifiedName()
              << " while holding '" << cs.held_lock_name << "' (rank "
              << cs.held_rank << "), which may block on " << it->second;
          Add("io-under-lock", f->file, cs.line, msg.str());
        }
      }
    }
  }

  // --------------------------------------------------------- guarded-by
  void CheckGuardedBy() {
    for (const auto& c : model_.classes) {
      if (c->mutexes.empty()) continue;
      for (const auto& f : c->fields) {
        if (f.guarded || f.is_const || f.is_atomic || f.is_sync_primitive ||
            f.is_thread || f.is_telemetry)
          continue;
        std::ostringstream msg;
        msg << "field '" << f.name << "' of mutex-owning class '" << c->name
            << "' has no GUARDED_BY annotation (use GUARDED_BY, make it "
               "const/atomic, or opt out with cortex-analyzer: "
               "allow(guarded-by))";
        Add("guarded-by", c->file, f.line, msg.str());
      }
    }
  }

  // ----------------------------------------------------------- layering
  void CheckLayering() {
    for (const auto& sf : model_.files) {
      const std::string from = LayerOf(sf->rel);
      if (from.empty()) continue;
      auto allowed = LayerTable().find(from);
      if (allowed == LayerTable().end()) continue;
      for (const auto& inc : sf->lexed.includes) {
        if (!inc.quoted) continue;
        const std::string to = IncludeLayer(inc.path);
        if (to.empty() || !LayerTable().count(to)) continue;
        if (allowed->second.count(to)) continue;
        std::ostringstream msg;
        msg << "layer '" << from << "' must not include '" << inc.path
            << "' (layer '" << to << "'); allowed targets:";
        for (const auto& a : allowed->second) msg << " " << a;
        Add("layering", sf->rel, inc.line, msg.str());
      }
    }
  }

  // ---------------------------------------------------- metric-contract
  void CheckMetricContract() {
    std::map<std::string, std::vector<const MetricLiteral*>> registered;
    std::set<std::string> dynamic_prefixes;
    for (const auto& lit : model_.metric_literals) {
      if (lit.registration) registered[lit.name].push_back(&lit);
      if (lit.dynamic_prefix) dynamic_prefixes.insert(lit.name);
    }
    for (const auto& [name, sites] : registered) {
      if (sites.size() <= 1) continue;
      std::ostringstream msg;
      msg << "metric '" << name << "' registered " << sites.size()
          << " times (first at " << sites[0]->file << "); each cortex_* "
          << "metric must be registered exactly once";
      Add("metric-contract", sites[1]->file, sites[1]->line, msg.str());
    }
    auto known = [&](const std::string& name) {
      if (registered.count(name)) return true;
      for (const auto& [reg, sites] : registered) {
        (void)sites;
        if (name.size() > reg.size() + 1 && name.rfind(reg + "_", 0) == 0)
          return true;  // derived series (histogram _p50 etc.)
      }
      for (const auto& prefix : dynamic_prefixes)
        if (name.rfind(prefix, 0) == 0) return true;
      return false;
    };
    for (const auto& lit : model_.metric_literals) {
      if (lit.registration || lit.dynamic_prefix) continue;
      if (SegmentCount(lit.name) < 3) continue;  // tool names etc.
      if (known(lit.name)) continue;
      std::ostringstream msg;
      msg << "metric literal '" << lit.name
          << "' matches no registration (GetCounter/GetGauge/GetHistogram "
             "with a literal name) and no dynamic prefix";
      Add("metric-contract", lit.file, lit.line, msg.str());
    }
    // Per-tenant instruments are bounded-cardinality only because they go
    // through the registry's dynamic-prefix path ("cortex_tenant_" + id);
    // a static registration under that prefix bypasses the cap.
    for (const auto& lit : model_.metric_literals) {
      if (!lit.registration || lit.dynamic_prefix) continue;
      if (lit.name.rfind("cortex_tenant_", 0) != 0) continue;
      std::ostringstream msg;
      msg << "metric '" << lit.name
          << "' statically registers under the per-tenant prefix "
             "'cortex_tenant_'; per-tenant instruments must use "
             "dynamic-prefix registration (\"cortex_tenant_\" + id) so the "
             "registry's cardinality cap applies";
      Add("metric-contract", lit.file, lit.line, msg.str());
    }
  }

  // ------------------------------------------------------ verb-contract
  void CheckVerbContract() {
    auto it = model_.enums.order.find("RequestType");
    if (it == model_.enums.order.end()) return;
    const std::vector<std::string>& verbs = it->second;
    for (auto& f : model_.functions) {
      if (f->case_labels.empty()) continue;
      for (const auto& v : verbs) {
        if (f->case_labels.count(v)) continue;
        std::ostringstream msg;
        msg << "dispatch " << f->QualifiedName()
            << " does not handle RequestType::" << v
            << "; every wire verb must be dispatched";
        Add("verb-contract", f->file, f->line, msg.str());
      }
    }
  }

  Model& model_;
  CallGraph graph_;
  std::map<const FunctionInfo*, std::vector<std::vector<FunctionInfo*>>>
      resolved_;
  std::vector<Finding> findings_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintFindingsJson(const char* key, const std::vector<Finding>& fs,
                       bool trailing_comma, std::ostream& os) {
  os << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < fs.size(); ++i) {
    os << "    {\"check\": \"" << JsonEscape(fs[i].check) << "\", \"file\": \""
       << JsonEscape(fs[i].file) << "\", \"line\": " << fs[i].line
       << ", \"message\": \"" << JsonEscape(fs[i].message) << "\"}"
       << (i + 1 < fs.size() ? "," : "") << "\n";
  }
  os << "  ]" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

const std::set<std::string>& KnownChecks() {
  static const std::set<std::string> kChecks = {
      "lock-rank",     "io-under-lock", "guarded-by",
      "layering",      "metric-contract", "verb-contract"};
  return kChecks;
}

std::string FindingKey(const Finding& f) {
  return f.check + "\t" + f.file + "\t" + f.message;
}

bool LoadTree(const std::string& root, Model* model, std::string* error) {
  const fs::path src = fs::path(root) / "src";
  if (!fs::is_directory(src)) {
    if (error) *error = "no src/ directory under " + root;
    return false;
  }
  auto add_file = [&](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    auto sf = std::make_unique<SourceFile>();
    sf->rel = fs::relative(p, root).generic_string();
    sf->lexed = Lex(buf.str());
    model->files.push_back(std::move(sf));
  };
  std::vector<fs::path> paths;
  for (const auto& e : fs::recursive_directory_iterator(src)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(e.path());
  }
  const fs::path tools = fs::path(root) / "tools";
  if (fs::is_directory(tools)) {
    for (const auto& e : fs::directory_iterator(tools)) {  // non-recursive:
      if (!e.is_regular_file()) continue;  // the analyzer checks itself via
      const std::string ext = e.path().extension().string();  // its tests
      if (ext == ".h" || ext == ".cc") paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) add_file(p);

  for (const auto& sf : model->files) CollectDecls(*sf, model);
  ResolveRanks(model);
  for (const auto& sf : model->files) ParseBodies(*sf, model);
  return true;
}

AnalysisResult Analyze(Model& model,
                       const std::set<std::string>& baseline_keys) {
  AnalysisResult result;
  std::vector<Finding> raw = Checker(model).Run();

  // Per-file allow() lookup.
  std::map<std::string, const LexedFile*> lexed_by_file;
  for (const auto& sf : model.files) lexed_by_file[sf->rel] = &sf->lexed;

  // (file, line, check) triples consumed by a suppressed finding.
  std::set<std::string> consumed;
  std::set<std::string> used_baseline;

  for (auto& f : raw) {
    bool suppressed = false;
    auto lf = lexed_by_file.find(f.file);
    if (lf != lexed_by_file.end()) {
      auto al = lf->second->allows.find(f.line);
      if (al != lf->second->allows.end() && al->second.count(f.check)) {
        suppressed = true;
        consumed.insert(f.file + "\x01" + std::to_string(f.line) + "\x01" +
                        f.check);
      }
    }
    if (suppressed) {
      result.suppressed.push_back(std::move(f));
    } else if (baseline_keys.count(FindingKey(f))) {
      used_baseline.insert(FindingKey(f));
      result.baselined.push_back(std::move(f));
    } else {
      result.active.push_back(std::move(f));
    }
  }

  // Stale allow() annotations: every AllowSite must have suppressed at
  // least one finding on one of its covered lines.
  for (const auto& sf : model.files) {
    for (const auto& site : sf->lexed.allow_sites) {
      if (!KnownChecks().count(site.check)) {
        result.active.push_back(
            Finding{"stale-allow", sf->rel, site.comment_line,
                    "suppression names unknown check '" + site.check + "'"});
        continue;
      }
      bool used = false;
      for (int l : site.lines)
        if (consumed.count(sf->rel + "\x01" + std::to_string(l) + "\x01" +
                           site.check))
          used = true;
      if (!used)
        result.active.push_back(Finding{
            "stale-allow", sf->rel, site.comment_line,
            "stale suppression: allow(" + site.check +
                ") matches no finding on its line; remove the comment"});
    }
  }

  // Stale baseline entries.
  for (const auto& key : baseline_keys) {
    if (used_baseline.count(key)) continue;
    const std::size_t t1 = key.find('\t');
    const std::size_t t2 = key.find('\t', t1 + 1);
    const std::string file =
        t1 == std::string::npos ? "" : key.substr(t1 + 1, t2 - t1 - 1);
    result.active.push_back(
        Finding{"stale-baseline", file.empty() ? "<baseline>" : file, 0,
                "baseline entry matches no current finding: " + key});
  }

  std::sort(result.active.begin(), result.active.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return result;
}

std::set<std::string> ParseBaseline(const std::string& text) {
  std::set<std::string> keys;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const auto& f : findings)
    if (f.check != "stale-baseline" && f.check != "stale-allow")
      keys.insert(FindingKey(f));
  std::string out =
      "# cortex_analyzer baseline: check<TAB>file<TAB>message per line.\n"
      "# Regenerate with: cortex_analyzer --root . --write-baseline\n";
  for (const auto& k : keys) out += k + "\n";
  return out;
}

void PrintHuman(const AnalysisResult& result, std::ostream& os) {
  for (const auto& f : result.active)
    os << f.file << ":" << f.line << ": [" << f.check << "] " << f.message
       << "\n";
  os << "cortex_analyzer: " << result.active.size() << " finding(s), "
     << result.suppressed.size() << " suppressed, "
     << result.baselined.size() << " baselined\n";
}

void PrintJson(const AnalysisResult& result, std::ostream& os) {
  os << "{\n";
  PrintFindingsJson("findings", result.active, true, os);
  PrintFindingsJson("suppressed", result.suppressed, true, os);
  PrintFindingsJson("baselined", result.baselined, false, os);
  os << "}\n";
}

}  // namespace cortex::analyzer
