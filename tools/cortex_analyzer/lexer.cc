#include "cortex_analyzer/lexer.h"

#include <cctype>
#include <cstddef>

namespace cortex::analyzer {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses `cortex-analyzer: allow(a, b)` out of a comment body; returns
// the named checks (empty when the marker is absent).
std::set<std::string> ParseAllows(const std::string& comment) {
  std::set<std::string> checks;
  const std::string marker = "cortex-analyzer:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return checks;
  at = comment.find("allow(", at + marker.size());
  if (at == std::string::npos) return checks;
  at += 6;
  const std::size_t end = comment.find(')', at);
  if (end == std::string::npos) return checks;
  std::string name;
  for (std::size_t i = at; i <= end; ++i) {
    const char c = i < end ? comment[i] : ',';
    if (c == ',' ) {
      // trim
      std::size_t b = 0, e = name.size();
      while (b < e && std::isspace(static_cast<unsigned char>(name[b]))) ++b;
      while (e > b && std::isspace(static_cast<unsigned char>(name[e - 1])))
        --e;
      if (e > b) checks.insert(name.substr(b, e - b));
      name.clear();
    } else {
      name.push_back(c);
    }
  }
  return checks;
}

}  // namespace

LexedFile Lex(const std::string& text) {
  LexedFile out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  // Whether any code token has been emitted on `line` — decides whether
  // an allow() comment also applies to the next line.
  bool line_has_code = false;

  auto newline = [&]() {
    ++line;
    line_has_code = false;
  };
  auto record_allows = [&](const std::string& body, int start_line,
                           int end_line, bool code_before) {
    const auto checks = ParseAllows(body);
    if (checks.empty()) return;
    for (const auto& check : checks) {
      AllowSite site;
      site.check = check;
      site.comment_line = start_line;
      site.lines.push_back(start_line);
      if (end_line != start_line) site.lines.push_back(end_line);
      if (!code_before) site.lines.push_back(end_line + 1);
      for (int l : site.lines) out.allows[l].insert(check);
      out.allow_sites.push_back(std::move(site));
    }
  };
  auto push = [&](Token::Kind kind, std::string t, int at_line) {
    out.tokens.push_back(Token{kind, std::move(t), at_line});
    line_has_code = true;
  };

  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && next == '/') {
      std::size_t j = i;
      while (j < n && text[j] != '\n') ++j;
      record_allows(text.substr(i, j - i), line, line, line_has_code);
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && next == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      j = j + 1 < n ? j + 2 : n;
      // A block comment suppresses its start..end lines; when it is
      // alone on the line it ends on, also the line after that.
      record_allows(text.substr(i, j - i), start_line, line, line_has_code);
      i = j;
      continue;
    }

    // Preprocessor directive: `#` first on its (logical) line.
    if (c == '#' && !line_has_code) {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      std::size_t dstart = j;
      while (j < n && IsIdentChar(text[j])) ++j;
      const std::string directive = text.substr(dstart, j - dstart);
      if (directive == "include") {
        while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
        if (j < n && (text[j] == '"' || text[j] == '<')) {
          const char close = text[j] == '"' ? '"' : '>';
          const bool quoted = text[j] == '"';
          std::size_t pstart = ++j;
          while (j < n && text[j] != close && text[j] != '\n') ++j;
          out.includes.push_back(
              IncludeDirective{text.substr(pstart, j - pstart), quoted, line});
        }
      }
      // Consume to end of line, honouring backslash continuations.
      while (j < n && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] == '\n') {
          newline();
          j += 2;
          continue;
        }
        ++j;
      }
      i = j;
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && next == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = text.find(closer, j);
      const std::size_t stop = end == std::string::npos ? n
                                                        : end + closer.size();
      const int at = line;
      for (std::size_t k = i; k < stop; ++k)
        if (text[k] == '\n') ++line;
      push(Token::Kind::kString, text.substr(i, stop - i), at);
      i = stop;
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      j = j < n ? j + 1 : n;
      push(c == '"' ? Token::Kind::kString : Token::Kind::kChar,
           text.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)))) {
      std::size_t j = i;
      while (j < n) {
        const char d = text[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      push(Token::Kind::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      push(Token::Kind::kIdent, text.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Punctuation: `::` and `->` as single tokens; everything else one
    // character (including `<` / `>`, kept single for template
    // tracking).
    if (c == ':' && next == ':') {
      push(Token::Kind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && next == '>') {
      push(Token::Kind::kPunct, "->", line);
      i += 2;
      continue;
    }
    push(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }

  out.tokens.push_back(Token{Token::Kind::kEof, "", line});
  return out;
}

}  // namespace cortex::analyzer
