// cortex_analyzer source model: a lightweight declaration / guard-scope
// parser over the repo's idioms (DESIGN.md §11).  It is not a C++
// frontend — it recognises exactly the patterns this codebase uses:
//
//   * `enum class LockRank { kName = N, ... }` rank tables;
//   * `RankedMutex name_{LockRank::kX, "lock.name"};` members (plus
//     unranked `std::mutex` / `std::shared_mutex` members, which get a
//     pseudo-rank so nesting them is still rejected);
//   * class bodies: fields (with GUARDED_BY / PT_GUARDED_BY detection
//     and a type text used for exemptions), member types, methods;
//   * function definitions (`Ret Class::Method(...) { ... }`, free
//     functions, inline methods) with per-body guard scopes —
//     `MutexLock` / `ReaderLock` / `WriterLock` RAII guards and
//     `std::unique_lock` / `std::lock_guard` / `std::shared_lock`,
//     including manual `lk.unlock()` / `lk.lock()` windows — and every
//     call site with the ranks held at that point;
//   * `case RequestType::kX:` labels inside dispatch functions;
//   * metric-name string literals and Get{Counter,Gauge,Histogram}
//     registration calls.
//
// When the parser is unsure it skips — the analysis is deliberately
// best-effort-but-conservative, and the fixture tests in
// tests/test_analyzer.cc pin the behaviours the checks rely on.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cortex_analyzer/lexer.h"

namespace cortex::analyzer {

inline constexpr int kUnrankedPseudoRank = 1000;  // matches LockRank::kLeaf

struct MutexMember {
  std::string name;        // member name, e.g. "queue_mu_"
  std::string lock_name;   // runtime name string, e.g. "server.queue_mu"
  std::string rank_token;  // "kServerQueue" (resolved via the enum table)
  int rank = -1;           // resolved rank; kUnrankedPseudoRank if unranked
  bool ranked = true;
  bool shared = false;     // RankedSharedMutex / std::shared_mutex
  int line = 0;
};

struct Field {
  std::string name;
  std::string type_text;  // normalised, space-joined declaration prefix
  int line = 0;
  bool guarded = false;       // GUARDED_BY / PT_GUARDED_BY present
  bool is_const = false;      // const applies to the member itself
  bool is_atomic = false;
  bool is_sync_primitive = false;  // mutex / condition variable member
  bool is_thread = false;
  bool is_telemetry = false;  // registry / instrument handle types
};

struct ClassInfo {
  std::string name;  // unqualified
  std::string file;
  int line = 0;
  std::vector<MutexMember> mutexes;
  std::vector<Field> fields;
  // Every data member's declaration prefix (including exempt ones) —
  // used to resolve `obj->Method()` receiver types.
  std::map<std::string, std::string> member_types;
  std::set<std::string> method_names;

  const MutexMember* FindMutex(const std::string& member) const {
    for (const auto& m : mutexes)
      if (m.name == member) return &m;
    return nullptr;
  }
};

// One lock acquisition inside a function body.
struct Acquisition {
  int rank = -1;
  std::string lock_name;   // human name ("server.queue_mu")
  int line = 0;
  // Innermost rank already held when this acquisition happens (-1 when
  // none) — the direct-inversion input.
  int held_rank = -1;
  std::string held_lock_name;
};

struct CallSite {
  std::string callee;
  std::string obj;        // receiver variable text ("" for plain calls)
  std::string qualifier;  // "Class" for Class::Fn(...), "" otherwise
  bool global_qualified = false;  // ::send(...)
  int line = 0;
  int held_rank = -1;  // max rank held at the call (-1 when none)
  std::string held_lock_name;
};

struct FunctionInfo {
  std::string cls;  // owning class name, "" for free functions
  std::string name;
  std::string file;
  int line = 0;
  std::map<std::string, std::string> param_types;  // name -> type text
  std::map<std::string, std::string> local_types;  // name -> type text
  std::vector<Acquisition> acquisitions;
  std::vector<CallSite> calls;
  std::set<std::string> case_labels;  // X from `case RequestType::X:`

  std::string QualifiedName() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct MetricLiteral {
  std::string name;  // the literal text without quotes
  std::string file;
  int line = 0;
  // GetCounter/GetGauge/GetHistogram with this literal as first arg.
  bool registration = false;
  // Literal participates in a `+` concatenation — a dynamic prefix.
  bool dynamic_prefix = false;
};

struct EnumTable {
  // enum name -> (enumerator -> value); values resolved for explicit
  // integer initialisers and implicit increments.
  std::map<std::string, std::map<std::string, int>> enums;
  // enum name -> enumerators in declaration order.
  std::map<std::string, std::vector<std::string>> order;
};

struct SourceFile {
  std::string rel;  // path relative to the analysis root, '/'-separated
  LexedFile lexed;
};

struct Model {
  std::vector<std::unique_ptr<SourceFile>> files;
  std::vector<std::unique_ptr<ClassInfo>> classes;
  std::vector<std::unique_ptr<FunctionInfo>> functions;
  std::vector<MetricLiteral> metric_literals;
  EnumTable enums;

  ClassInfo* FindClass(const std::string& name) {
    for (auto& c : classes)
      if (c->name == name) return c.get();
    return nullptr;
  }
};

// Parsing is two-phase so function bodies see the whole repo's
// declarations (guard resolution needs every class's mutex table and
// the LockRank enum, whichever file they live in):
//
//   for each file: CollectDecls(file, &model);
//   ResolveRanks(&model);
//   for each file: ParseBodies(file, &model);
//
// CollectDecls appends classes (fields, mutex members, method names)
// and enums; ParseBodies appends FunctionInfo with acquisitions and
// call sites, plus metric literals.
void CollectDecls(const SourceFile& file, Model* model);
void ResolveRanks(Model* model);
void ParseBodies(const SourceFile& file, Model* model);

}  // namespace cortex::analyzer
