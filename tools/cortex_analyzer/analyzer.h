// cortex_analyzer check catalogue (DESIGN.md §11):
//
//   lock-rank        statically-reachable non-increasing RankedMutex
//                    acquisition path (direct or through the call graph)
//   io-under-lock    blocking syscall (::send/::recv/...) reachable
//                    while any ranked/tracked guard is held
//   guarded-by       mutable non-atomic field of a mutex-owning class
//                    without GUARDED_BY or an explicit opt-out
//   layering         #include edge that violates the directory DAG
//   metric-contract  cortex_* metric literal duplicate-registered or
//                    used without a registration
//   verb-contract    RequestType dispatch switch missing an enumerator
//   stale-allow      `cortex-analyzer: allow(...)` that suppresses
//                    nothing (or names an unknown check)
//   stale-baseline   baseline entry matching no current finding
//
// Suppression: `// cortex-analyzer: allow(<check>)` on the finding's
// line (or on its own line directly above), or a baseline entry of the
// form `check<TAB>file<TAB>message`.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "cortex_analyzer/model.h"

namespace cortex::analyzer {

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;  // line-number free, so baselines survive edits
};

struct AnalysisResult {
  std::vector<Finding> active;      // unsuppressed: these fail the run
  std::vector<Finding> suppressed;  // matched an allow() annotation
  std::vector<Finding> baselined;   // matched a baseline entry
};

// The checks a suppression may name.
const std::set<std::string>& KnownChecks();

// Baseline key for a finding (check \t file \t message).
std::string FindingKey(const Finding& f);

// Loads every src/**/*.{h,cc} file under `root`, plus top-level
// tools/*.cc (the analyzer itself is excluded), into the model.
// Returns false (with `error` set) when `root` has no src/ directory.
bool LoadTree(const std::string& root, Model* model, std::string* error);

// Runs every check and applies allow() + baseline suppression.
AnalysisResult Analyze(Model& model,
                       const std::set<std::string>& baseline_keys);

// `check\tfile\tmessage` lines; '#' comments and blanks ignored.
std::set<std::string> ParseBaseline(const std::string& text);
std::string FormatBaseline(const std::vector<Finding>& findings);

void PrintHuman(const AnalysisResult& result, std::ostream& os);
void PrintJson(const AnalysisResult& result, std::ostream& os);

}  // namespace cortex::analyzer
