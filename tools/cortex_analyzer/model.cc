#include "cortex_analyzer/model.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>

namespace cortex::analyzer {

namespace {

// Clang thread-safety annotation macros (util/thread_annotations.h).
// Inside a declaration these take a parenthesised argument group that is
// NOT a parameter list; the parser skips the group and, for the
// GUARDED_BY pair, marks the field guarded.
const std::set<std::string>& AnnotationMacros() {
  static const std::set<std::string> kMacros = {
      "CAPABILITY",       "SCOPED_CAPABILITY", "GUARDED_BY",
      "PT_GUARDED_BY",    "ACQUIRED_BEFORE",   "ACQUIRED_AFTER",
      "REQUIRES",         "REQUIRES_SHARED",   "ACQUIRE",
      "ACQUIRE_SHARED",   "RELEASE",           "RELEASE_SHARED",
      "RELEASE_GENERIC",  "TRY_ACQUIRE",       "TRY_ACQUIRE_SHARED",
      "EXCLUDES",         "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
      "RETURN_CAPABILITY"};
  return kMacros;
}

// Specifier-ish identifiers that are never a declarator name.
bool IsBareSpecifier(const std::string& s) {
  return s == "NO_THREAD_SAFETY_ANALYSIS" || s == "override" ||
         s == "final" || s == "noexcept" || s == "const" ||
         s == "constexpr" || s == "inline" || s == "virtual" ||
         s == "explicit" || s == "static" || s == "friend" ||
         s == "mutable" || s == "volatile" || s == "thread_local";
}

bool IsStatementKeyword(const std::string& s) {
  return s == "return" || s == "if" || s == "else" || s == "while" ||
         s == "for" || s == "do" || s == "switch" || s == "case" ||
         s == "default" || s == "break" || s == "continue" || s == "goto" ||
         s == "throw" || s == "delete" || s == "new" || s == "sizeof" ||
         s == "alignof" || s == "co_return" || s == "co_await" ||
         s == "static_assert" || s == "using" || s == "typedef" ||
         s == "catch" || s == "try";
}

bool TypeTokensLook(const std::vector<Token>& toks) {
  if (toks.empty()) return false;
  for (const auto& t : toks) {
    if (t.kind == Token::Kind::kIdent) {
      if (IsStatementKeyword(t.text)) return false;
      continue;
    }
    if (t.kind == Token::Kind::kPunct &&
        (t.text == "::" || t.text == "<" || t.text == ">" || t.text == "*" ||
         t.text == "&" || t.text == "," || t.text == "(" || t.text == ")"))
      continue;  // parens: std::function<double()> member types
    if (t.kind == Token::Kind::kNumber) continue;  // array extents etc.
    return false;
  }
  const Token& last = toks.back();
  return last.kind == Token::Kind::kIdent ||
         (last.kind == Token::Kind::kPunct &&
          (last.text == ">" || last.text == "*" || last.text == "&"));
}

std::string JoinTokens(const std::vector<Token>& toks) {
  std::string out;
  for (const auto& t : toks) {
    if (!out.empty()) out += ' ';
    out += t.text;
  }
  return out;
}

bool ContainsIdent(const std::vector<Token>& toks, const char* name) {
  for (const auto& t : toks)
    if (t.kind == Token::Kind::kIdent && t.text == name) return true;
  return false;
}

bool ContainsPunct(const std::vector<Token>& toks, const char* p) {
  for (const auto& t : toks)
    if (t.kind == Token::Kind::kPunct && t.text == p) return true;
  return false;
}

// Does `const` apply to the member itself (not the pointee)?
bool ConstAppliesToMember(const std::vector<Token>& toks) {
  int last_star = -1, last_const = -1;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].IsPunct("*")) last_star = static_cast<int>(k);
    if (toks[k].IsIdent("const")) last_const = static_cast<int>(k);
  }
  if (last_const < 0) return false;
  return last_const > last_star;  // `T* const x` or plain `const T x`
}

std::string StripQuotes(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return s.substr(1, s.size() - 2);
  return s;
}

// ---------------------------------------------------------------------
// Parser: one pass over the token stream with explicit scope recursion.
// Runs twice per file — declaration collection, then body analysis —
// so guard resolution in any body can see every class's mutex table.
// ---------------------------------------------------------------------
class Parser {
 public:
  Parser(const SourceFile& file, Model* model, bool bodies)
      : toks_(file.lexed.tokens),
        file_(file.rel),
        model_(model),
        bodies_(bodies) {}

  void Run() { ParseTopLevel(toks_.empty() ? 0 : toks_.size() - 1); }

 private:
  const std::vector<Token>& toks_;
  std::string file_;
  Model* model_;
  const bool bodies_;  // false: collect decls; true: parse function bodies
  std::size_t i_ = 0;

  const Token& T(std::size_t k) const {
    return k < toks_.size() ? toks_[k] : toks_.back();
  }
  // Token at signed offset from k (kEof sentinel when out of range).
  const Token& T2(std::size_t k, int off) const {
    const long at = static_cast<long>(k) + off;
    static const Token kNull{Token::Kind::kEof, "", 0};
    if (at < 0 || at >= static_cast<long>(toks_.size())) return kNull;
    return toks_[static_cast<std::size_t>(at)];
  }

  // Index just past the token matching the open bracket at `at`.
  std::size_t SkipBalanced(std::size_t at, const char* open,
                           const char* close) const {
    int depth = 0;
    std::size_t k = at;
    for (; k < toks_.size() && toks_[k].kind != Token::Kind::kEof; ++k) {
      if (toks_[k].IsPunct(open)) ++depth;
      else if (toks_[k].IsPunct(close) && --depth == 0) return k + 1;
    }
    return k;
  }

  std::size_t SkipAngles(std::size_t at) const {  // at points at `<`
    int depth = 0;
    std::size_t k = at;
    for (; k < toks_.size() && toks_[k].kind != Token::Kind::kEof; ++k) {
      if (toks_[k].IsPunct("<")) ++depth;
      else if (toks_[k].IsPunct(">") && --depth == 0) return k + 1;
      else if (toks_[k].IsPunct(";")) return k;  // bail: not a template
    }
    return k;
  }

  void SkipToPunct(const char* p) {
    while (i_ < toks_.size() && toks_[i_].kind != Token::Kind::kEof) {
      if (toks_[i_].IsPunct(p)) { ++i_; return; }
      if (toks_[i_].IsPunct("(")) { i_ = SkipBalanced(i_, "(", ")"); continue; }
      if (toks_[i_].IsPunct("{")) { i_ = SkipBalanced(i_, "{", "}"); continue; }
      ++i_;
    }
  }

  // ------------------------------------------------------------ top level
  void ParseTopLevel(std::size_t end) {
    while (i_ < end) {
      const Token& t = toks_[i_];
      if (t.IsIdent("namespace")) { ParseNamespace(end); continue; }
      if (t.IsIdent("enum")) { ParseEnum(); continue; }
      if (t.IsIdent("template")) { SkipTemplateHeader(); continue; }
      if ((t.IsIdent("class") || t.IsIdent("struct")) && IsClassDef(i_)) {
        ParseClass();
        continue;
      }
      if (t.IsIdent("extern") || t.IsIdent("using") ||
          t.IsIdent("typedef") || t.IsIdent("static_assert")) {
        SkipToPunct(";");
        continue;
      }
      if (t.kind == Token::Kind::kIdent || t.IsPunct("::")) {
        if (TryParseFunctionDef()) continue;
        SkipToPunct(";");
        continue;
      }
      if (t.IsPunct("{")) { i_ = SkipBalanced(i_, "{", "}"); continue; }
      ++i_;
    }
    i_ = end;
  }

  void ParseNamespace(std::size_t outer_end) {
    ++i_;  // namespace
    while (i_ < toks_.size() && (toks_[i_].kind == Token::Kind::kIdent ||
                                 toks_[i_].IsPunct("::")))
      ++i_;
    if (i_ < toks_.size() && toks_[i_].IsPunct("=")) {  // namespace alias
      SkipToPunct(";");
      return;
    }
    if (i_ < toks_.size() && toks_[i_].IsPunct("{")) {
      const std::size_t end = SkipBalanced(i_, "{", "}");
      ++i_;  // {
      ParseTopLevel(std::min(end - 1, outer_end));
      if (i_ < toks_.size() && toks_[i_].IsPunct("}")) ++i_;
    }
  }

  void SkipTemplateHeader() {
    ++i_;  // template
    if (i_ < toks_.size() && toks_[i_].IsPunct("<")) i_ = SkipAngles(i_);
  }

  // `class`/`struct` at `at` introduces a definition (vs fwd decl or an
  // elaborated type like `struct Shard* p;`).
  bool IsClassDef(std::size_t at) const {
    std::size_t k = at + 1;
    int idents = 0;
    while (k < toks_.size()) {
      const Token& t = toks_[k];
      if (t.kind == Token::Kind::kIdent) {
        if (T(k + 1).IsPunct("(")) {  // attribute macro
          k = SkipBalanced(k + 1, "(", ")");
          continue;
        }
        ++idents;
        ++k;
        continue;
      }
      if (t.IsPunct("{") || t.IsPunct(":")) return idents > 0;
      return false;
    }
    return false;
  }

  void ParseEnum() {
    ++i_;  // enum
    if (i_ < toks_.size() &&
        (toks_[i_].IsIdent("class") || toks_[i_].IsIdent("struct")))
      ++i_;
    if (i_ >= toks_.size() || toks_[i_].kind != Token::Kind::kIdent) {
      SkipToPunct(";");
      return;
    }
    const std::string name = toks_[i_].text;
    ++i_;
    if (i_ < toks_.size() && toks_[i_].IsPunct(":")) {  // underlying type
      while (i_ < toks_.size() && !toks_[i_].IsPunct("{") &&
             !toks_[i_].IsPunct(";"))
        ++i_;
    }
    if (i_ >= toks_.size() || !toks_[i_].IsPunct("{")) {  // fwd decl
      SkipToPunct(";");
      return;
    }
    const std::size_t end = SkipBalanced(i_, "{", "}");
    if (bodies_) {  // already recorded in the decls pass
      i_ = end;
      if (i_ < toks_.size() && toks_[i_].IsPunct(";")) ++i_;
      return;
    }
    ++i_;  // {
    int value = -1;
    auto& values = model_->enums.enums[name];
    auto& order = model_->enums.order[name];
    while (i_ < end - 1) {
      if (toks_[i_].kind != Token::Kind::kIdent) { ++i_; continue; }
      const std::string enumerator = toks_[i_].text;
      ++i_;
      if (i_ < end - 1 && toks_[i_].IsPunct("=")) {
        ++i_;
        int sign = 1;
        if (i_ < end - 1 && toks_[i_].IsPunct("-")) { sign = -1; ++i_; }
        if (i_ < end - 1 && toks_[i_].kind == Token::Kind::kNumber)
          value = sign * std::atoi(toks_[i_].text.c_str());
      } else {
        ++value;
      }
      values[enumerator] = value;
      order.push_back(enumerator);
      while (i_ < end - 1 && !toks_[i_].IsPunct(",")) ++i_;
      if (i_ < end - 1) ++i_;  // ,
    }
    i_ = end;
    if (i_ < toks_.size() && toks_[i_].IsPunct(";")) ++i_;
  }

  // ------------------------------------------------------------- classes
  void ParseClass() {
    const int line = toks_[i_].line;
    ++i_;  // class/struct
    std::string name;
    while (i_ < toks_.size()) {
      const Token& t = toks_[i_];
      if (t.kind == Token::Kind::kIdent) {
        if (T(i_ + 1).IsPunct("(")) {
          i_ = SkipBalanced(i_ + 1, "(", ")");  // attribute macro
          continue;
        }
        if (t.text != "final") name = t.text;
        ++i_;
        continue;
      }
      break;
    }
    if (i_ < toks_.size() && toks_[i_].IsPunct(":")) {  // base clause
      while (i_ < toks_.size() && !toks_[i_].IsPunct("{")) {
        if (toks_[i_].IsPunct("<")) { i_ = SkipAngles(i_); continue; }
        if (toks_[i_].IsPunct(";")) return;  // defensive
        ++i_;
      }
    }
    if (i_ >= toks_.size() || !toks_[i_].IsPunct("{")) {
      SkipToPunct(";");
      return;
    }
    const std::size_t end = SkipBalanced(i_, "{", "}");
    ++i_;  // {

    ClassInfo* ci = model_->FindClass(name);
    if (!bodies_) {
      auto cls = std::make_unique<ClassInfo>();
      cls->name = name;
      cls->file = file_;
      cls->line = line;
      ci = cls.get();
      model_->classes.push_back(std::move(cls));
    }
    ParseClassBody(ci, end - 1);
    i_ = end;
    if (i_ < toks_.size() && toks_[i_].IsPunct(";")) ++i_;
  }

  void ParseClassBody(ClassInfo* ci, std::size_t end) {
    while (i_ < end) {
      const Token& t = toks_[i_];
      if ((t.IsIdent("public") || t.IsIdent("private") ||
           t.IsIdent("protected")) &&
          T(i_ + 1).IsPunct(":")) {
        i_ += 2;
        continue;
      }
      if (t.IsIdent("using") || t.IsIdent("typedef") ||
          t.IsIdent("static_assert") || t.IsIdent("friend")) {
        SkipToPunct(";");
        continue;
      }
      if (t.IsIdent("template")) { SkipTemplateHeader(); continue; }
      if (t.IsIdent("enum")) { ParseEnum(); continue; }
      if ((t.IsIdent("class") || t.IsIdent("struct")) && IsClassDef(i_)) {
        ParseClass();  // nested type, registered by unqualified name
        continue;
      }
      if (t.IsPunct(";")) { ++i_; continue; }
      ParseMember(ci, end);
    }
  }

  // One member declaration: field, method, or constructor.
  void ParseMember(ClassInfo* ci, std::size_t end) {
    std::vector<Token> decl;
    bool guarded = false;
    bool is_static = false;
    const int line = toks_[i_].line;
    int angle = 0;

    while (i_ < end) {
      const Token& t = toks_[i_];
      if (t.kind == Token::Kind::kIdent &&
          AnnotationMacros().count(t.text) && T(i_ + 1).IsPunct("(")) {
        if (t.text == "GUARDED_BY" || t.text == "PT_GUARDED_BY")
          guarded = true;
        i_ = SkipBalanced(i_ + 1, "(", ")");
        continue;
      }
      if (t.IsIdent("static") || t.IsIdent("constexpr")) {
        is_static = true;
        ++i_;
        continue;
      }
      if (t.IsIdent("mutable") || t.IsIdent("inline") ||
          t.IsIdent("virtual") || t.IsIdent("explicit")) {
        ++i_;
        continue;
      }
      if (t.IsPunct("<")) { ++angle; decl.push_back(t); ++i_; continue; }
      if (t.IsPunct(">")) { --angle; decl.push_back(t); ++i_; continue; }
      if (angle > 0) { decl.push_back(t); ++i_; continue; }

      if (t.IsPunct("(")) {
        MemberMethod(ci, decl, line, end);
        return;
      }
      if (t.IsPunct("{")) {
        const std::size_t init_end = SkipBalanced(i_, "{", "}");
        MemberField(ci, decl, guarded, is_static, line, i_ + 1,
                    init_end - 1);
        i_ = init_end;
        SkipToPunct(";");
        return;
      }
      if (t.IsPunct("=") || t.IsPunct(";") || t.IsPunct("[")) {
        MemberField(ci, decl, guarded, is_static, line, 0, 0);
        SkipToPunct(";");
        return;
      }
      if (t.IsIdent("operator")) {
        // Operator method: consume up to the param list.
        while (i_ < end && !toks_[i_].IsPunct("(")) ++i_;
        if (i_ < end) MemberMethod(ci, decl, line, end);
        return;
      }
      decl.push_back(t);
      ++i_;
    }
  }

  void MemberField(ClassInfo* ci, const std::vector<Token>& decl,
                   bool guarded, bool is_static, int line,
                   std::size_t init_begin, std::size_t init_end) {
    if (bodies_ || !ci || decl.empty()) return;
    int name_at = -1;
    for (int k = static_cast<int>(decl.size()) - 1; k >= 0; --k) {
      if (decl[k].kind == Token::Kind::kIdent &&
          !IsBareSpecifier(decl[k].text)) {
        name_at = k;
        break;
      }
    }
    if (name_at <= 0) return;  // need at least one type token + name
    std::vector<Token> type(decl.begin(), decl.begin() + name_at);
    const std::string fname = decl[name_at].text;
    if (!TypeTokensLook(type)) return;
    const std::string type_text = JoinTokens(type);
    ci->member_types[fname] = type_text;
    if (is_static) return;

    const bool by_value =
        !ContainsPunct(type, "*") && !ContainsPunct(type, "&");
    const bool ranked = ContainsIdent(type, "RankedMutex") ||
                        ContainsIdent(type, "RankedSharedMutex");
    const bool plain_mutex = ContainsIdent(type, "mutex") ||
                             ContainsIdent(type, "shared_mutex") ||
                             ContainsIdent(type, "recursive_mutex");
    if (by_value && (ranked || plain_mutex)) {
      MutexMember m;
      m.name = fname;
      m.line = line;
      m.shared = ContainsIdent(type, "RankedSharedMutex") ||
                 ContainsIdent(type, "shared_mutex");
      if (ranked) {
        // RankedMutex name_{LockRank::kX, "lock.name"};
        for (std::size_t k = init_begin; k < init_end; ++k) {
          if (toks_[k].kind == Token::Kind::kIdent &&
              toks_[k].text.size() > 1 && toks_[k].text[0] == 'k' &&
              m.rank_token.empty())
            m.rank_token = toks_[k].text;
          if (toks_[k].kind == Token::Kind::kString && m.lock_name.empty())
            m.lock_name = StripQuotes(toks_[k].text);
        }
      }
      m.ranked = !m.rank_token.empty();
      if (!m.ranked) m.rank = kUnrankedPseudoRank;
      if (m.lock_name.empty()) m.lock_name = ci->name + "::" + fname;
      ci->mutexes.push_back(std::move(m));
    }

    Field f;
    f.name = fname;
    f.type_text = type_text;
    f.line = line;
    f.guarded = guarded;
    f.is_const = ConstAppliesToMember(type);
    f.is_atomic = ContainsIdent(type, "atomic");
    f.is_sync_primitive =
        ranked || plain_mutex || ContainsIdent(type, "condition_variable") ||
        ContainsIdent(type, "condition_variable_any") ||
        ContainsIdent(type, "EpochDomain");
    f.is_thread =
        ContainsIdent(type, "thread") || ContainsIdent(type, "jthread");
    f.is_telemetry = ContainsIdent(type, "Counter") ||
                     ContainsIdent(type, "Gauge") ||
                     ContainsIdent(type, "AtomicHistogram") ||
                     ContainsIdent(type, "MetricRegistry") ||
                     ContainsIdent(type, "FlightRecorder");
    ci->fields.push_back(std::move(f));
  }

  // `decl` holds return type + method name; toks_[i_] is `(`.
  void MemberMethod(ClassInfo* ci, const std::vector<Token>& decl, int line,
                    std::size_t end) {
    std::string mname;
    for (int k = static_cast<int>(decl.size()) - 1; k >= 0; --k) {
      if (decl[k].kind == Token::Kind::kIdent &&
          !IsBareSpecifier(decl[k].text)) {
        mname = decl[k].text;
        break;
      }
    }
    if (ci && !bodies_ && !mname.empty()) ci->method_names.insert(mname);

    const std::size_t params_at = i_;
    i_ = SkipBalanced(i_, "(", ")");
    if (!SkipDeclTrailerToBody(end)) return;  // no body
    if (!bodies_ || mname.empty() || !ci) {
      i_ = SkipBalanced(i_, "{", "}");
      return;
    }
    auto fn = std::make_unique<FunctionInfo>();
    fn->cls = ci->name;
    fn->name = mname;
    fn->file = file_;
    fn->line = line;
    ParseParamTypes(params_at, fn.get());
    FunctionInfo* fi = fn.get();
    model_->functions.push_back(std::move(fn));
    ParseFunctionBody(fi, ci);
  }

  // After a parameter list: skip trailing qualifiers and any ctor-init
  // list.  Returns true with i_ at the body `{`; false after consuming a
  // bodiless declaration.
  bool SkipDeclTrailerToBody(std::size_t end) {
    while (i_ < end) {
      const Token& t = toks_[i_];
      if (t.IsPunct(";")) { ++i_; return false; }
      if (t.IsPunct("{")) return true;
      if (t.IsPunct("=")) {  // = default / delete / 0
        SkipToPunct(";");
        return false;
      }
      if (t.IsPunct(":")) {  // ctor-init list
        ++i_;
        while (i_ < end) {
          if (toks_[i_].IsPunct("(")) {
            i_ = SkipBalanced(i_, "(", ")");
            continue;
          }
          if (toks_[i_].IsPunct("{")) {
            // `name{args}` is a member initialiser; a brace NOT preceded
            // by an initialiser name is the constructor body.
            const Token& prev = toks_[i_ - 1];
            if (prev.kind == Token::Kind::kIdent || prev.IsPunct(">")) {
              i_ = SkipBalanced(i_, "{", "}");
              continue;
            }
            return true;
          }
          if (toks_[i_].IsPunct(";")) { ++i_; return false; }
          ++i_;
        }
        return false;
      }
      if (t.kind == Token::Kind::kIdent &&
          AnnotationMacros().count(t.text) && T(i_ + 1).IsPunct("(")) {
        i_ = SkipBalanced(i_ + 1, "(", ")");
        continue;
      }
      if (t.IsPunct("(")) { i_ = SkipBalanced(i_, "(", ")"); continue; }
      ++i_;
    }
    return false;
  }

  // params_at points at `(`.  Records `name -> type text` per parameter.
  void ParseParamTypes(std::size_t params_at, FunctionInfo* fn) {
    const std::size_t close = SkipBalanced(params_at, "(", ")");
    const std::size_t pe = close > params_at ? close - 1 : params_at;
    std::vector<Token> cur;
    int depth = 0, angle = 0;
    for (std::size_t k = params_at + 1; k < pe; ++k) {
      const Token& t = toks_[k];
      if (t.IsPunct("(")) ++depth;
      if (t.IsPunct(")")) --depth;
      if (t.IsPunct("<")) ++angle;
      if (t.IsPunct(">")) --angle;
      if (t.IsPunct(",") && depth == 0 && angle == 0) {
        RecordParam(cur, fn);
        cur.clear();
        continue;
      }
      if (t.IsPunct("=") && depth == 0 && angle == 0) {
        RecordParam(cur, fn);  // default argument: drop the initialiser
        cur.clear();
        while (k + 1 < pe) {
          const Token& d = toks_[k + 1];
          if (d.IsPunct(",")) break;
          if (d.IsPunct("(")) { k = SkipBalanced(k + 1, "(", ")") - 1; continue; }
          if (d.IsPunct("{")) { k = SkipBalanced(k + 1, "{", "}") - 1; continue; }
          ++k;
        }
        continue;
      }
      cur.push_back(t);
    }
    RecordParam(cur, fn);
  }

  void RecordParam(std::vector<Token>& cur, FunctionInfo* fn) {
    if (cur.size() < 2) return;
    int name_at = -1;
    for (int k = static_cast<int>(cur.size()) - 1; k >= 0; --k) {
      if (cur[k].kind == Token::Kind::kIdent &&
          !IsBareSpecifier(cur[k].text)) {
        name_at = k;
        break;
      }
    }
    if (name_at <= 0) return;
    std::vector<Token> type(cur.begin(), cur.begin() + name_at);
    if (!TypeTokensLook(type)) return;
    fn->param_types[cur[name_at].text] = JoinTokens(type);
  }

  // ----------------------------------------------------- free functions
  // At namespace scope: `Ret [Class::]Name(params) quals [init] { ... }`.
  bool TryParseFunctionDef() {
    std::size_t k = i_;
    std::vector<Token> decl;
    int angle = 0;
    while (k < toks_.size()) {
      const Token& t = toks_[k];
      if (t.kind == Token::Kind::kEof) return false;
      if (t.IsPunct("<")) { ++angle; decl.push_back(t); ++k; continue; }
      if (t.IsPunct(">")) { --angle; decl.push_back(t); ++k; continue; }
      if (angle > 0) { decl.push_back(t); ++k; continue; }
      if (t.IsPunct("(")) break;
      if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("=")) return false;
      if (t.kind == Token::Kind::kIdent && IsStatementKeyword(t.text))
        return false;
      decl.push_back(t);
      ++k;
    }
    if (k >= toks_.size() || decl.empty()) return false;
    std::string name, cls;
    int name_at = -1;
    for (int q = static_cast<int>(decl.size()) - 1; q >= 0; --q) {
      if (decl[q].kind == Token::Kind::kIdent &&
          !IsBareSpecifier(decl[q].text)) {
        name = decl[q].text;
        name_at = q;
        break;
      }
    }
    if (name.empty()) return false;
    if (name_at >= 2 && decl[name_at - 1].IsPunct("::") &&
        decl[name_at - 2].kind == Token::Kind::kIdent)
      cls = decl[name_at - 2].text;
    const int line = toks_[i_].line;

    const std::size_t params_at = k;
    i_ = SkipBalanced(k, "(", ")");
    if (!SkipDeclTrailerToBody(toks_.size() - 1)) return true;  // decl only
    if (!bodies_) {
      i_ = SkipBalanced(i_, "{", "}");
      return true;
    }
    auto fn = std::make_unique<FunctionInfo>();
    fn->cls = cls;
    fn->name = name;
    fn->file = file_;
    fn->line = line;
    ParseParamTypes(params_at, fn.get());
    FunctionInfo* fi = fn.get();
    model_->functions.push_back(std::move(fn));
    ParseFunctionBody(fi, cls.empty() ? nullptr : model_->FindClass(cls));
    return true;
  }

  // ------------------------------------------------------ function body
  struct Guard {
    int rank = -1;
    std::string lock_name;
    std::string var;  // unique_lock variable name ("" for scoped guards)
    bool active = true;
  };

  void ParseFunctionBody(FunctionInfo* fn, ClassInfo* ci) {
    const std::size_t end = SkipBalanced(i_, "{", "}");  // i_ at body `{`
    std::vector<Guard> guards;
    std::vector<std::size_t> scope_marks;
    std::vector<Token> stmt;

    auto held = [&]() -> const Guard* {
      const Guard* best = nullptr;
      for (const auto& g : guards)
        if (g.active && (!best || g.rank > best->rank)) best = &g;
      return best;
    };
    auto record_acquire = [&](const Guard& g, int line,
                              const Guard* exclude) {
      Acquisition a;
      a.rank = g.rank;
      a.lock_name = g.lock_name;
      a.line = line;
      const Guard* h = nullptr;
      for (const auto& o : guards)
        if (o.active && &o != exclude && (!h || o.rank > h->rank)) h = &o;
      if (h) {
        a.held_rank = h->rank;
        a.held_lock_name = h->lock_name;
      }
      fn->acquisitions.push_back(a);
    };

    std::size_t k = i_;
    while (k < end) {
      const Token& t = toks_[k];
      if (t.IsPunct("{")) {
        scope_marks.push_back(guards.size());
        stmt.clear();
        ++k;
        continue;
      }
      if (t.IsPunct("}")) {
        if (!scope_marks.empty()) {
          guards.resize(std::min(guards.size(), scope_marks.back()));
          scope_marks.pop_back();
        }
        stmt.clear();
        ++k;
        continue;
      }
      if (t.IsPunct(";")) {
        MaybeRecordLocalDecl(stmt, fn);
        stmt.clear();
        ++k;
        continue;
      }

      // case RequestType::kX:
      if (t.IsIdent("case")) {
        std::size_t c = k + 1;
        std::string last_enum, last_ident;
        while (c < end && !toks_[c].IsPunct(":")) {
          if (toks_[c].kind == Token::Kind::kIdent) {
            if (T(c + 1).IsPunct("::")) last_enum = toks_[c].text;
            last_ident = toks_[c].text;
          }
          ++c;
        }
        if (last_enum == "RequestType" && !last_ident.empty())
          fn->case_labels.insert(last_ident);
        stmt.clear();
        k = c + 1;
        continue;
      }

      // Epoch critical section: EpochReadGuard guard(domain);  Modeled
      // as a synthetic guard at LockRank::kEpochCritical so acquiring
      // any ranked mutex (or doing blocking IO) inside the section is
      // reported by the lock-rank / io-under-lock checks.
      if (t.kind == Token::Kind::kIdent && t.text == "EpochReadGuard" &&
          T(k + 1).kind == Token::Kind::kIdent && T(k + 2).IsPunct("(")) {
        Guard g;
        g.rank = 2000;  // LockRank::kEpochCritical
        g.lock_name = "epoch.read";
        record_acquire(g, t.line, nullptr);
        guards.push_back(g);
        stmt.clear();
        k = SkipBalanced(k + 2, "(", ")");
        continue;
      }
      // Scoped guard: MutexLock lock(expr);
      if (t.kind == Token::Kind::kIdent &&
          (t.text == "MutexLock" || t.text == "WriterLock" ||
           t.text == "ReaderLock") &&
          T(k + 1).kind == Token::Kind::kIdent && T(k + 2).IsPunct("(")) {
        const std::size_t close = SkipBalanced(k + 2, "(", ")");
        Guard g = ResolveGuardArg(k + 3, close - 1, fn, ci);
        if (g.rank >= 0) {
          record_acquire(g, t.line, nullptr);
          guards.push_back(g);
        }
        stmt.clear();
        k = close;
        continue;
      }
      // std::unique_lock<X> lk(mu_); / lock_guard / shared_lock /
      // scoped_lock.
      if (t.kind == Token::Kind::kIdent &&
          (t.text == "unique_lock" || t.text == "lock_guard" ||
           t.text == "shared_lock" || t.text == "scoped_lock")) {
        std::size_t c = k + 1;
        if (c < end && toks_[c].IsPunct("<")) c = SkipAngles(c);
        if (c + 1 < end && toks_[c].kind == Token::Kind::kIdent &&
            toks_[c + 1].IsPunct("(")) {
          const std::string var = toks_[c].text;
          const std::size_t close = SkipBalanced(c + 1, "(", ")");
          Guard g = ResolveGuardArg(c + 2, close - 1, fn, ci);
          if (g.rank >= 0) {
            if (t.text == "unique_lock") g.var = var;
            record_acquire(g, t.line, nullptr);
            guards.push_back(g);
          }
          stmt.clear();
          k = close;
          continue;
        }
      }
      // lk.unlock() / lk.lock() on a tracked unique_lock variable.
      if (t.kind == Token::Kind::kIdent && T(k + 1).IsPunct(".") &&
          T(k + 2).kind == Token::Kind::kIdent && T(k + 3).IsPunct("(")) {
        const std::string& method = T(k + 2).text;
        if (method == "unlock" || method == "lock") {
          Guard* tracked = nullptr;
          for (auto& g : guards)
            if (!g.var.empty() && g.var == t.text) tracked = &g;
          if (tracked) {
            if (method == "unlock") {
              tracked->active = false;
            } else if (!tracked->active) {
              tracked->active = true;
              record_acquire(*tracked, t.line, tracked);
            }
            k = SkipBalanced(k + 3, "(", ")");
            stmt.clear();
            continue;
          }
        }
      }

      // Call sites: ident followed by `(`.
      if (t.kind == Token::Kind::kIdent && T(k + 1).IsPunct("(") &&
          !IsStatementKeyword(t.text) && !AnnotationMacros().count(t.text) &&
          t.text != "CHECK" && t.text != "DCHECK" && t.text != "defined") {
        CallSite cs;
        cs.callee = t.text;
        cs.line = t.line;
        const Token& p1 = T2(k, -1);
        if (p1.IsPunct(".") || p1.IsPunct("->")) {
          const Token& p2 = T2(k, -2);
          if (p2.kind == Token::Kind::kIdent) {
            cs.obj = p2.text;
          } else if (p2.IsPunct("]")) {
            // arr[idx]->Fn(): walk back to the ident before `[`.
            int d = 0;
            std::size_t b = k - 2;
            while (b > 0) {
              if (toks_[b].IsPunct("]")) ++d;
              else if (toks_[b].IsPunct("[") && --d == 0) { --b; break; }
              --b;
            }
            cs.obj = toks_[b].kind == Token::Kind::kIdent ? toks_[b].text
                                                          : "<expr>";
          } else {
            cs.obj = "<expr>";  // chained call etc. — unresolvable
          }
        } else if (p1.IsPunct("::")) {
          const Token& p2 = T2(k, -2);
          if (p2.kind == Token::Kind::kIdent) cs.qualifier = p2.text;
          else cs.global_qualified = true;
        }
        const Guard* h = held();
        if (h) {
          cs.held_rank = h->rank;
          cs.held_lock_name = h->lock_name;
        }
        fn->calls.push_back(cs);
        stmt.push_back(t);
        ++k;
        continue;
      }

      stmt.push_back(t);
      ++k;
    }
    i_ = end;
  }

  // Resolve the guard argument tokens [b, e) to a mutex member.
  Guard ResolveGuardArg(std::size_t b, std::size_t e, FunctionInfo* fn,
                        ClassInfo* ci) {
    Guard g;
    if (b >= e) return g;
    std::string member, obj;
    for (std::size_t k = b; k < e; ++k)
      if (toks_[k].kind == Token::Kind::kIdent) member = toks_[k].text;
    for (std::size_t k = b + 1; k < e; ++k) {
      if ((toks_[k].IsPunct(".") || toks_[k].IsPunct("->")) && k + 1 < e &&
          toks_[k + 1].kind == Token::Kind::kIdent &&
          toks_[k + 1].text == member &&
          toks_[k - 1].kind == Token::Kind::kIdent)
        obj = toks_[k - 1].text;
    }
    if (member.empty()) return g;

    const MutexMember* m = nullptr;
    if (!obj.empty()) {
      const ClassInfo* oc = ResolveVarClass(obj, fn, ci);
      if (oc) m = oc->FindMutex(member);
    }
    if (!m && obj.empty() && ci) m = ci->FindMutex(member);
    if (!m) {
      // Fallback: member name unique (by rank) across all classes.
      const MutexMember* found = nullptr;
      bool ambiguous = false;
      for (const auto& c : model_->classes) {
        if (const MutexMember* cand = c->FindMutex(member)) {
          if (found && found->rank != cand->rank) ambiguous = true;
          found = cand;
        }
      }
      if (!ambiguous) m = found;
    }
    if (!m || m->rank < 0) return g;
    g.rank = m->rank;
    g.lock_name = m->lock_name;
    return g;
  }

  // Class of a variable: local, then param, then member of `ci`.
  const ClassInfo* ResolveVarClass(const std::string& var, FunctionInfo* fn,
                                   ClassInfo* ci) {
    std::string type;
    auto lt = fn->local_types.find(var);
    if (lt != fn->local_types.end()) type = lt->second;
    if (type.empty()) {
      auto pt = fn->param_types.find(var);
      if (pt != fn->param_types.end()) type = pt->second;
    }
    if (type.empty() && ci) {
      auto mt = ci->member_types.find(var);
      if (mt != ci->member_types.end()) type = mt->second;
    }
    if (type.empty()) return nullptr;
    for (const auto& c : model_->classes)
      if (!c->name.empty() && type.find(c->name) != std::string::npos)
        return c.get();
    return nullptr;
  }

  void MaybeRecordLocalDecl(const std::vector<Token>& stmt,
                            FunctionInfo* fn) {
    if (stmt.size() < 2) return;
    std::vector<Token> decl;
    for (const auto& t : stmt) {
      if (t.IsPunct("=") || t.IsPunct("(")) break;
      decl.push_back(t);
    }
    if (decl.size() < 2) return;
    const Token& name = decl.back();
    if (name.kind != Token::Kind::kIdent || IsStatementKeyword(name.text))
      return;
    std::vector<Token> type(decl.begin(), decl.end() - 1);
    if (!TypeTokensLook(type)) return;
    fn->local_types.emplace(name.text, JoinTokens(type));
  }
};

// Flat scan for `cortex_*` metric-name literals: registrations are
// literals passed directly to Get{Counter,Gauge,Histogram}; a literal
// adjacent to `+` is a dynamic prefix.
void ScanMetricLiterals(const SourceFile& file, Model* model) {
  const auto& toks = file.lexed.tokens;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].kind != Token::Kind::kString) continue;
    const std::string name = StripQuotes(toks[k].text);
    if (name.rfind("cortex_", 0) != 0) continue;
    MetricLiteral lit;
    lit.name = name;
    lit.file = file.rel;
    lit.line = toks[k].line;
    if (k >= 2 && toks[k - 1].IsPunct("(") &&
        toks[k - 2].kind == Token::Kind::kIdent) {
      const std::string& fn = toks[k - 2].text;
      lit.registration = fn == "GetCounter" || fn == "GetGauge" ||
                         fn == "GetHistogram";
    }
    if ((k + 1 < toks.size() && toks[k + 1].IsPunct("+")) ||
        (k >= 1 && toks[k - 1].IsPunct("+")))
      lit.dynamic_prefix = true;
    model->metric_literals.push_back(std::move(lit));
  }
}

}  // namespace

void CollectDecls(const SourceFile& file, Model* model) {
  Parser(file, model, /*bodies=*/false).Run();
}

void ResolveRanks(Model* model) {
  const auto& ranks = model->enums.enums["LockRank"];
  for (auto& c : model->classes) {
    for (auto& m : c->mutexes) {
      if (m.ranked) {
        auto it = ranks.find(m.rank_token);
        m.rank = it == ranks.end() ? -1 : it->second;
      }
      if (m.rank < 0) {
        m.ranked = false;
        m.rank = kUnrankedPseudoRank;
      }
    }
  }
}

void ParseBodies(const SourceFile& file, Model* model) {
  Parser(file, model, /*bodies=*/true).Run();
  ScanMetricLiterals(file, model);
}

}  // namespace cortex::analyzer
