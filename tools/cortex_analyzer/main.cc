// cortex_analyzer CLI.  Usage:
//   cortex_analyzer --root <repo> [--baseline <file>] [--json]
//                   [--write-baseline] [--dump]
//
// Exit status: 0 when no active findings, 1 otherwise, 2 on usage or
// I/O errors.  See DESIGN.md §11 and `--help`.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cortex_analyzer/analyzer.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: cortex_analyzer [--root DIR] [--baseline FILE] [--json]\n"
        "                       [--write-baseline] [--dump]\n"
        "\n"
        "Static lock-discipline, layering, and metric/verb-contract\n"
        "checks over DIR/src (plus top-level DIR/tools sources).\n"
        "\n"
        "  --root DIR        repository root to scan (default: .)\n"
        "  --baseline FILE   accepted-findings file; entries not matched\n"
        "                    by a current finding are reported as stale\n"
        "  --write-baseline  rewrite FILE from the current findings\n"
        "  --json            machine-readable output\n"
        "  --dump            debug: print the parsed lock model\n";
}

void DumpModel(const cortex::analyzer::Model& model, std::ostream& os) {
  os << "== mutexes ==\n";
  for (const auto& c : model.classes) {
    for (const auto& m : c->mutexes)
      os << c->name << "::" << m.name << " rank=" << m.rank << " ('"
         << m.lock_name << "', " << (m.shared ? "shared" : "exclusive")
         << (m.ranked ? "" : ", unranked") << ")\n";
  }
  os << "== functions ==\n";
  for (const auto& f : model.functions) {
    if (f->acquisitions.empty() && f->case_labels.empty()) continue;
    os << f->QualifiedName() << " (" << f->file << ":" << f->line << ")\n";
    for (const auto& a : f->acquisitions) {
      os << "  acquire '" << a.lock_name << "' rank=" << a.rank << " at line "
         << a.line;
      if (a.held_rank >= 0)
        os << " holding '" << a.held_lock_name << "' rank=" << a.held_rank;
      os << "\n";
    }
    for (const auto& l : f->case_labels) os << "  case RequestType::" << l
                                            << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool json = false, write_baseline = false, dump = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "cortex_analyzer: unknown argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    }
  }

  cortex::analyzer::Model model;
  std::string error;
  if (!cortex::analyzer::LoadTree(root, &model, &error)) {
    std::cerr << "cortex_analyzer: " << error << "\n";
    return 2;
  }
  if (dump) DumpModel(model, std::cout);

  std::set<std::string> baseline;
  if (!baseline_path.empty() && !write_baseline) {
    std::ifstream in(baseline_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      baseline = cortex::analyzer::ParseBaseline(buf.str());
    }
  }

  cortex::analyzer::AnalysisResult result =
      cortex::analyzer::Analyze(model, baseline);

  if (write_baseline) {
    if (baseline_path.empty()) {
      std::cerr << "cortex_analyzer: --write-baseline needs --baseline\n";
      return 2;
    }
    std::ofstream out(baseline_path);
    out << cortex::analyzer::FormatBaseline(result.active);
    std::cout << "cortex_analyzer: wrote " << result.active.size()
              << " entries to " << baseline_path << "\n";
    return 0;
  }

  if (json)
    cortex::analyzer::PrintJson(result, std::cout);
  else
    cortex::analyzer::PrintHuman(result, std::cout);
  return result.active.empty() ? 0 : 1;
}
