// cortex_analyzer lexer: a minimal C++ tokenizer sufficient for the
// repo's idioms.  It is NOT a conforming preprocessor — it skips
// directives (recording #include paths), strips comments (recording
// `cortex-analyzer: allow(<check>)` suppressions per line), and emits a
// flat token stream the declaration/guard-scope parser (model.h) walks.
//
// Deliberate simplifications, safe for this codebase:
//   * no macro expansion — the analyzer pattern-matches the annotation
//     macros (GUARDED_BY, MutexLock, ...) by name instead;
//   * `<` and `>` are always single-character tokens so template
//     nesting can be tracked without disambiguating `>>`;
//   * `::` and `->` are single tokens (the parser keys on them).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cortex::analyzer {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kEof };
  Kind kind = Kind::kEof;
  std::string text;
  int line = 1;

  bool Is(Kind k, const char* t) const { return kind == k && text == t; }
  bool IsPunct(const char* t) const { return Is(Kind::kPunct, t); }
  bool IsIdent(const char* t) const { return Is(Kind::kIdent, t); }
};

struct IncludeDirective {
  std::string path;   // as written between the delimiters
  bool quoted = false;  // "..." vs <...>
  int line = 1;
};

// One `// cortex-analyzer: allow(check)` annotation.  `lines` is the
// set of source lines the annotation covers (the comment's own line,
// plus the next line when the comment stands alone) — a single
// annotation, however many lines it covers, must suppress at least one
// finding or it is reported as stale.
struct AllowSite {
  std::string check;
  int comment_line = 1;
  std::vector<int> lines;
};

struct LexedFile {
  std::vector<Token> tokens;  // terminated by one kEof token
  std::vector<IncludeDirective> includes;
  std::vector<AllowSite> allow_sites;
  // line -> set of check names suppressed on that line (derived from
  // allow_sites; kept as a map for O(log n) suppression lookups).
  std::map<int, std::set<std::string>> allows;
};

LexedFile Lex(const std::string& text);

}  // namespace cortex::analyzer
