// CI smoke for the cluster tier, single process: three cortexd nodes and a
// cortex_router as in-process threads, loadgen-style cluster traffic (many
// clients, zipf-skewed key popularity) driven through the router, one live
// MIGRATE mid-traffic.  Exits non-zero on ANY dropped request, transport
// error, or false miss — this is the zero-loss acceptance gate, sized to
// stay fast under the ASan/TSan ctest legs.
//
// Flags: --tasks=120 --clients=4 --rounds=3 --skew=1.1 --replication=2
// plus the ServingWorld workload flags (--workload/--seed/--trace).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cluster/router.h"
#include "serve/client.h"
#include "serve/concurrent_engine.h"
#include "serve/server.h"
#include "serve/serving_world.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace cortex;

namespace {

struct Node {
  std::string name;
  std::string socket;
  std::unique_ptr<serve::ConcurrentShardedEngine> engine;
  std::unique_ptr<serve::CortexServer> server;
};

std::unique_ptr<Node> StartNode(const serve::ServingWorld& world, int index,
                                std::size_t workers) {
  auto node = std::make_unique<Node>();
  node->name = "node" + std::to_string(index);
  node->socket = "/tmp/cortex_smoke_" + std::to_string(::getpid()) + "_" +
                 std::to_string(index) + ".sock";
  serve::ConcurrentEngineOptions eopts;
  eopts.num_shards = 2;
  eopts.cache.capacity_tokens = 1e7;
  eopts.housekeeping_interval_sec = 0.05;
  node->engine = std::make_unique<serve::ConcurrentShardedEngine>(
      &world.embedder, world.judger.get(), eopts);
  serve::ServerOptions sopts;
  sopts.unix_path = node->socket;
  // Thread-per-connection: cover every router worker, the migration
  // stream, and slack (DESIGN.md §10 sizing rule).
  sopts.num_workers = workers;
  sopts.max_frame_bytes = std::size_t{64} << 20;
  node->server = std::make_unique<serve::CortexServer>(node->engine.get(),
                                                       sopts);
  std::string error;
  if (!node->server->Start(&error)) {
    std::cerr << "cluster_smoke: " << node->name << " failed to start: "
              << error << "\n";
    std::exit(1);
  }
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  // Default to a small workload (--tasks=120) so the smoke stays fast under
  // the sanitizer ctest legs; explicit flags still win.
  std::vector<const char*> args(argv, argv + argc);
  if (!Flags(argc, argv).Has("tasks")) args.push_back("--tasks=120");
  Flags flags(static_cast<int>(args.size()), args.data());
  const auto clients = static_cast<std::size_t>(flags.GetInt("clients", 4));
  const auto rounds = static_cast<std::size_t>(flags.GetInt("rounds", 3));
  const double skew = flags.GetDouble("skew", 1.1);
  const auto replication =
      static_cast<std::size_t>(flags.GetInt("replication", 2));

  std::string error;
  const auto world = serve::BuildServingWorld(flags, &error);
  if (!world) {
    std::cerr << "cluster_smoke: " << error << "\n";
    return 1;
  }
  const auto& oracle = *world->bundle.oracle;

  // The deterministic key set: ONE canonical paraphrase per topic.  Keys of
  // distinct topics never dedup/replace each other, so once inserted, an
  // exact-key LOOKUP must hit forever — any miss is a lost entry, not
  // semantic-cache noise.  (Inserting multiple paraphrases of one topic
  // would let key-replace retire earlier keys, which is correct cache
  // behaviour but would muddy the zero-loss assertion.)
  std::vector<const std::string*> keys;
  for (const auto& topic : world->bundle.universe->topics()) {
    const std::string& key = topic.paraphrases.front();
    if (!oracle.ExpectedInfo(key).empty()) keys.push_back(&key);
  }
  if (keys.empty()) {
    std::cerr << "cluster_smoke: workload produced no usable keys\n";
    return 1;
  }

  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(StartNode(*world, i, clients + 3));
  }

  cluster::RouterOptions ropts;
  ropts.port = 0;
  ropts.num_workers = clients;
  ropts.ring.replication = replication;
  ropts.embedder = &world->embedder;
  cluster::ClusterRouter router(ropts);
  for (int i = 0; i < 3; ++i) {
    if (!router.AddNode(nodes[static_cast<std::size_t>(i)]->name,
                        "unix:" + nodes[static_cast<std::size_t>(i)]->socket,
                        &error)) {
      std::cerr << "cluster_smoke: " << error << "\n";
      return 1;
    }
  }
  if (!router.Start(&error)) {
    std::cerr << "cluster_smoke: router failed to start: " << error << "\n";
    return 1;
  }

  // Warm: insert every key once through the router, then capture the
  // pre-migration baseline with one verification sweep.  The judger's
  // deterministic pseudo-noise rejects a small tail of keys even on an
  // exact self-match (working as designed — same verdict every time), so
  // the zero-loss invariant is over the keys that hit NOW: traffic and the
  // post-migration sweep must reproduce every one of these hits exactly.
  std::vector<const std::string*> stable;
  {
    serve::BlockingClient client;
    if (!client.ConnectTcp("127.0.0.1", router.port(), &error)) {
      std::cerr << "cluster_smoke: connect failed: " << error << "\n";
      return 1;
    }
    for (const std::string* key : keys) {
      serve::Request insert;
      insert.type = serve::RequestType::kInsert;
      insert.key = *key;
      insert.value = oracle.ExpectedInfo(*key);
      insert.staticity = oracle.Staticity(*key);
      const auto response = client.Call(insert, &error);
      if (!response || response->type != serve::ResponseType::kOk) {
        std::cerr << "cluster_smoke: warm insert failed for '" << *key
                  << "': " << (response ? response->message : error) << "\n";
        return 1;
      }
    }
    for (const std::string* key : keys) {
      serve::Request lookup;
      lookup.type = serve::RequestType::kLookup;
      lookup.query = *key;
      const auto response = client.Call(lookup, &error);
      if (!response) {
        std::cerr << "cluster_smoke: baseline sweep failed: " << error
                  << "\n";
        return 1;
      }
      if (response->type == serve::ResponseType::kHit) stable.push_back(key);
    }
  }
  if (stable.size() < keys.size() * 8 / 10) {
    std::cerr << "cluster_smoke: only " << stable.size() << "/" << keys.size()
              << " keys hit pre-migration — cache is misbehaving before the"
                 " cluster is even exercised\n";
    return 1;
  }

  // Traffic: zipf-skewed exact-key lookups, loadgen cluster-mode style.
  // Runs across the migration below; every response must be a HIT.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0}, failures{0};
  std::vector<std::thread> traffic;
  for (std::size_t tid = 0; tid < clients; ++tid) {
    traffic.emplace_back([&, tid] {
      serve::BlockingClient client;
      std::string err;
      if (!client.ConnectTcp("127.0.0.1", router.port(), &err)) {
        ++failures;
        return;
      }
      Rng rng(0x5eedULL * (tid + 1));
      ZipfSampler zipf(stable.size(), skew);
      for (std::size_t round = 0; round < rounds && !stop.load(); ++round) {
        for (std::size_t n = 0; n < stable.size(); ++n) {
          serve::Request lookup;
          lookup.type = serve::RequestType::kLookup;
          lookup.query = *stable[zipf.Sample(rng)];
          const auto response = client.Call(lookup, &err);
          if (response && response->type == serve::ResponseType::kHit) {
            ++served;
          } else {
            ++failures;
            std::cerr << "cluster_smoke: lookup failed for '" << lookup.query
                      << "': "
                      << (response ? serve::EncodePayload(*response) : err)
                      << "\n";
          }
        }
      }
    });
  }

  // One live migration while the traffic runs: node3 joins the ring.
  std::uint64_t moved = 0;
  {
    serve::BlockingClient op;
    if (!op.ConnectTcp("127.0.0.1", router.port(), &error)) {
      std::cerr << "cluster_smoke: operator connect failed: " << error
                << "\n";
      stop = true;
      for (auto& t : traffic) t.join();
      return 1;
    }
    serve::Request migrate;
    migrate.type = serve::RequestType::kMigrate;
    migrate.node_name = nodes[3]->name;
    migrate.endpoint = "unix:" + nodes[3]->socket;
    const auto response = op.Call(migrate, &error);
    if (!response || response->type != serve::ResponseType::kOk) {
      std::cerr << "cluster_smoke: MIGRATE failed: "
                << (response ? response->message : error) << "\n";
      stop = true;
      for (auto& t : traffic) t.join();
      return 1;
    }
    moved = response->id;
  }
  for (auto& t : traffic) t.join();

  // Post-migration sweep on the 4-node ring: every baseline hit must still
  // be a hit — migration may not lose a single entry.
  {
    serve::BlockingClient client;
    if (!client.ConnectTcp("127.0.0.1", router.port(), &error)) {
      std::cerr << "cluster_smoke: connect failed: " << error << "\n";
      return 1;
    }
    for (const std::string* key : stable) {
      serve::Request lookup;
      lookup.type = serve::RequestType::kLookup;
      lookup.query = *key;
      const auto response = client.Call(lookup, &error);
      if (!response || response->type != serve::ResponseType::kHit) {
        ++failures;
        std::cerr << "cluster_smoke: post-migration miss for '" << *key
                  << "'\n";
      } else {
        ++served;
      }
    }
  }

  const auto counter = [&](const char* name) {
    return router.registry()->GetCounter(name)->Value();
  };
  std::cout << "cluster_smoke: " << served.load() << " requests served, "
            << stable.size() << "/" << keys.size()
            << " baseline keys, migration moved " << moved
            << " entries (ring v" << router.ring_version() << ", "
            << router.num_nodes() << " nodes, failovers="
            << counter("cortex_router_failovers") << ", protocol_errors="
            << counter("cortex_router_protocol_errors") << ")\n";

  router.Drain(2.0);
  for (auto& node : nodes) node->server->Drain(2.0);

  if (failures.load() != 0 || router.num_nodes() != 4 ||
      counter("cortex_router_migrations") != 1) {
    std::cerr << "cluster_smoke: FAIL (" << failures.load()
              << " dropped/erroneous requests)\n";
    return 1;
  }
  std::cout << "cluster_smoke: PASS (zero dropped requests, zero false"
               " misses)\n";
  return 0;
}
