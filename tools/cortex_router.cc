// cortex_router: the cluster tier's front door.  Speaks the cortexd wire
// protocol to clients and routes every request to the owning cortexd
// nodes via a consistent-hash ring (src/cluster).
//
//   cortex_router --nodes=127.0.0.1:8377,127.0.0.1:8378 --port=8400
//                 --replication=2 --workload=musique --tasks=1000
//
// Run the nodes and the router with the SAME workload flags: placement
// keys come from the IDF anchor of each query, so the router must fit the
// same embedder the nodes judge with.  Add nodes live with the MIGRATE
// command (cluster/router.h documents the handoff protocol).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "serve/serving_world.h"
#include "telemetry/metrics.h"
#include "util/flags.h"

using namespace cortex;
using namespace cortex::cluster;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

void PrintUsage() {
  std::cout <<
      "cortex_router — consistent-hash router over cortexd nodes\n"
      "  ring:      --nodes=EP[,EP...]  (EP = host:port or unix:PATH)\n"
      "             --node-names=a,b,... (default node0,node1,...)\n"
      "             --replication=1 --vnodes=64\n"
      "  placement: --placement=anchor|raw (anchor fits the workload's\n"
      "             embedder: pass the same --workload/--tasks/--seed or\n"
      "             --trace flags as the nodes)\n"
      "  listen:    --port=8400 (--port=0 for ephemeral) --host=127.0.0.1\n"
      "             --unix=PATH (overrides TCP)\n"
      "  serving:   --workers=4 --max-pending=64 --max-pipeline=64\n"
      "             --drain-sec=5\n"
      "  nodes:     --node-timeout=2.0 --unhealthy-after=3\n"
      "             --retry-backoff=1.0 --node-frame-mb=64\n"
      "             --hop-latency=none|local|rag|search (simulated\n"
      "             inter-node hop, net/latency presets)\n"
      "  telemetry: --metrics-interval=0 --metrics-file=PATH\n";
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) parts.push_back(text.substr(start));
      break;
    }
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("help")) {
    PrintUsage();
    return 0;
  }

  const auto endpoints = SplitCsv(flags.GetString("nodes"));
  if (endpoints.empty()) {
    std::cerr << "cortex_router: --nodes is required (see --help)\n";
    return 1;
  }
  auto names = SplitCsv(flags.GetString("node-names"));
  if (!names.empty() && names.size() != endpoints.size()) {
    std::cerr << "cortex_router: --node-names count must match --nodes\n";
    return 1;
  }
  for (std::size_t i = names.size(); i < endpoints.size(); ++i) {
    names.push_back("node" + std::to_string(i));
  }

  // The embedder for anchor placement comes from the same deterministic
  // world the nodes built — identical flags, identical IDF weights.
  std::string error;
  std::unique_ptr<serve::ServingWorld> world;
  if (flags.GetString("placement", "anchor") == "anchor") {
    world = serve::BuildServingWorld(flags, &error);
    if (!world) {
      std::cerr << "cortex_router: " << error << "\n";
      return 1;
    }
  }

  RouterOptions ropts;
  ropts.unix_path = flags.GetString("unix");
  ropts.host = flags.GetString("host", "127.0.0.1");
  ropts.port = static_cast<int>(flags.GetInt("port", 8400));
  ropts.num_workers = static_cast<std::size_t>(flags.GetInt("workers", 4));
  ropts.max_pending_connections =
      static_cast<std::size_t>(flags.GetInt("max-pending", 64));
  ropts.max_pipeline =
      static_cast<std::size_t>(flags.GetInt("max-pipeline", 64));
  ropts.ring.replication =
      static_cast<std::size_t>(flags.GetInt("replication", 1));
  ropts.ring.vnodes_per_node =
      static_cast<std::size_t>(flags.GetInt("vnodes", 64));
  ropts.node.call_timeout_sec = flags.GetDouble("node-timeout", 2.0);
  ropts.node.unhealthy_after_failures =
      static_cast<int>(flags.GetInt("unhealthy-after", 3));
  ropts.node.retry_backoff_sec = flags.GetDouble("retry-backoff", 1.0);
  ropts.node.max_frame_bytes =
      static_cast<std::size_t>(flags.GetInt("node-frame-mb", 64)) << 20;
  ropts.embedder = world ? &world->embedder : nullptr;

  LatencyDistribution hop = LatencyDistribution::LocalService();
  const std::string hop_name = flags.GetString("hop-latency", "none");
  if (hop_name == "local") {
    ropts.node.hop_latency = &hop;
  } else if (hop_name == "rag") {
    hop = LatencyDistribution::SelfHostedRag();
    ropts.node.hop_latency = &hop;
  } else if (hop_name == "search") {
    hop = LatencyDistribution::CrossRegionSearchApi();
    ropts.node.hop_latency = &hop;
  } else if (hop_name != "none") {
    std::cerr << "cortex_router: unknown --hop-latency=" << hop_name << "\n";
    return 1;
  }

  ClusterRouter router(ropts);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (!router.AddNode(names[i], endpoints[i], &error)) {
      std::cerr << "cortex_router: --nodes: " << error << "\n";
      return 1;
    }
  }
  if (!router.Start(&error)) {
    std::cerr << "cortex_router: " << error << "\n";
    return 1;
  }

  const double metrics_interval = flags.GetDouble("metrics-interval", 0.0);
  const std::string metrics_file = flags.GetString("metrics-file");
  std::atomic<bool> metrics_stop{false};
  std::thread metrics_thread;
  if (metrics_interval > 0.0) {
    metrics_thread = std::thread([&] {
      const auto period = std::chrono::duration<double>(metrics_interval);
      while (!metrics_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(period);
        if (metrics_stop.load(std::memory_order_acquire)) break;
        const std::string text = router.registry()->Snapshot().RenderText();
        if (metrics_file.empty()) {
          std::fprintf(stderr, "--- metrics t=%.1fs ---\n%s",
                       telemetry::WallSeconds(), text.c_str());
        } else if (std::FILE* f = std::fopen(metrics_file.c_str(), "a")) {
          std::fprintf(f, "--- metrics t=%.1fs ---\n%s",
                       telemetry::WallSeconds(), text.c_str());
          std::fclose(f);
        }
      }
    });
  }

  if (!ropts.unix_path.empty()) {
    std::cout << "cortex_router listening on unix:" << ropts.unix_path;
  } else {
    std::cout << "cortex_router listening on " << ropts.host << ":"
              << router.port();
  }
  std::cout << "  (nodes=" << router.num_nodes()
            << ", replication=" << ropts.ring.replication
            << ", vnodes=" << ropts.ring.vnodes_per_node << ", placement="
            << (ropts.embedder != nullptr ? "anchor" : "raw") << ")\n"
            << "Ctrl-C to stop.\n"
            << std::flush;

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "\ncortex_router: draining...\n";
  router.Drain(flags.GetDouble("drain-sec", 5.0));
  metrics_stop.store(true, std::memory_order_release);
  if (metrics_thread.joinable()) metrics_thread.join();

  if (!metrics_file.empty()) {
    if (std::FILE* f = std::fopen(metrics_file.c_str(), "a")) {
      std::fprintf(f, "--- metrics t=%.1fs (final) ---\n%s",
                   telemetry::WallSeconds(),
                   router.registry()->Snapshot().RenderText().c_str());
      std::fflush(f);
      std::fclose(f);
    }
  }

  std::printf("--- final metrics ---\n%s",
              router.registry()->Snapshot().RenderText().c_str());
  return 0;
}
