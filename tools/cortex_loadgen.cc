// cortex_loadgen: multi-threaded closed-loop load generator for cortexd.
//
// N client threads replay a workload trace's tool queries against a
// running server: LOOKUP each query, and on a miss fetch ground truth from
// the workload oracle (standing in for the remote service) and INSERT it —
// the same agent-side protocol the sim's resolver layer follows.  Reports
// wall-clock throughput, hit rate, answer correctness, and p50/p99/p999
// latency histograms.
//
//   cortexd       --workload=musique --tasks=1000 --port=8377 &
//   cortex_loadgen --workload=musique --tasks=1000 --port=8377 --threads=8
//
// Run both sides with identical workload flags: the worlds are rebuilt
// deterministically in each process (see serve/serving_world.h).
//
// Cluster mode: --endpoints=host:port,unix:PATH,... spreads the client
// threads round-robin over several frontends (routers or nodes), and
// --skew=S replays queries under zipf(S) popularity instead of one pass
// in task order — the skewed-key regime a consistent-hash ring has to
// absorb.  STATS/DUMPTRACE digests come from the first endpoint.
//
// Open-loop mode: --open-loop --arrival-rate=R replaces the closed loop
// with Poisson arrivals at R req/s aggregate (split evenly across the
// client threads, each sampling exponential inter-arrival gaps).  Latency
// is measured from the SCHEDULED arrival, not the send, so queueing delay
// from a lagging server shows up in the tail instead of silently
// throttling the offered load — the standard open-loop correction for
// coordinated omission.  The end-of-run report adds the server's
// cross-request batching digest (cortex_pipeline_* from STATS): batch
// size distribution, full vs window flushes, and stage-wait quantiles.
//
// Multi-tenant mode: --tenants=N tags every request with a tenant id
// ("t0".."tN-1") and speaks TLOOKUP/TINSERT instead of LOOKUP/INSERT;
// --tenant-skew=S samples the tenant per request from zipf(S) (rank 0
// hottest) so one hot tenant hammers its quota while the rest trickle.
// The report adds a per-tenant table — hit rate, BUSY count, and p99 —
// the isolation frontier: the hot tenant saturating its budget must not
// degrade everyone else's hit rate or tail latency.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.h"
#include "serve/client.h"
#include "serve/serving_world.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::serve;

namespace {

// Per-tenant slice of the run (only populated under --tenants).
struct TenantStats {
  Histogram lookup_latency;  // seconds
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t busy = 0;

  void Merge(const TenantStats& other) {
    lookup_latency.Merge(other.lookup_latency);
    hits += other.hits;
    misses += other.misses;
    busy += other.busy;
  }
};

struct ThreadResult {
  Histogram lookup_latency;  // seconds
  Histogram insert_latency;  // seconds
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t wrong_hits = 0;   // hit whose value fails the oracle check
  std::uint64_t busy = 0;
  std::uint64_t inserts_ok = 0;
  std::uint64_t inserts_rejected = 0;
  std::uint64_t protocol_errors = 0;
  std::string first_error;
  std::vector<TenantStats> tenants;  // indexed by tenant rank

  void Merge(const ThreadResult& other) {
    lookup_latency.Merge(other.lookup_latency);
    insert_latency.Merge(other.insert_latency);
    hits += other.hits;
    misses += other.misses;
    wrong_hits += other.wrong_hits;
    busy += other.busy;
    inserts_ok += other.inserts_ok;
    inserts_rejected += other.inserts_rejected;
    protocol_errors += other.protocol_errors;
    if (first_error.empty()) first_error = other.first_error;
    if (tenants.size() < other.tenants.size()) {
      tenants.resize(other.tenants.size());
    }
    for (std::size_t i = 0; i < other.tenants.size(); ++i) {
      tenants[i].Merge(other.tenants[i]);
    }
  }
};

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NoteError(ThreadResult& r, const std::string& error) {
  ++r.protocol_errors;
  if (r.first_error.empty()) r.first_error = error;
}

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e3);
  return buf;
}

std::string StatValue(const Response& stats, std::string_view key) {
  for (const auto& [k, v] : stats.stats) {
    if (k == key) return v;
  }
  return "-";
}

bool Connect(BlockingClient& client, const cluster::NodeEndpoint& ep,
             std::string* err) {
  return ep.unix_path.empty() ? client.ConnectTcp(ep.host, ep.port, err)
                              : client.ConnectUnix(ep.unix_path, err);
}

// One STATS round trip on a fresh connection (used by the mid-run monitor
// and the end-of-run registry printout).
std::optional<Response> FetchStats(const cluster::NodeEndpoint& ep,
                                   std::string* err) {
  BlockingClient client;
  if (!Connect(client, ep, err)) return std::nullopt;
  Request stats;
  stats.type = RequestType::kStats;
  auto response = client.Call(stats, err);
  if (!response || response->type != ResponseType::kStats) {
    if (err && err->empty()) *err = "unexpected STATS response";
    return std::nullopt;
  }
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto threads =
      static_cast<std::size_t>(std::max<std::int64_t>(
          1, flags.GetInt("threads", 4)));
  const bool insert_on_miss = flags.GetBool("insert-on-miss", true);
  const std::string unix_path = flags.GetString("unix");
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(flags.GetInt("port", 8377));
  const double skew = flags.GetDouble("skew", 0.0);
  const bool open_loop = flags.GetBool("open-loop", false);
  const double arrival_rate = flags.GetDouble("arrival-rate", 0.0);
  if (open_loop && arrival_rate <= 0.0) {
    std::cerr << "cortex_loadgen: --open-loop needs --arrival-rate=R > 0\n";
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const auto tenant_count = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.GetInt("tenants", 0)));
  const double tenant_skew = flags.GetDouble("tenant-skew", 1.1);

  // Cluster mode: client threads spread round-robin over the endpoint
  // list; otherwise everyone hits the single --unix / --host:--port.
  std::vector<cluster::NodeEndpoint> endpoints;
  {
    const std::string list = flags.GetString("endpoints");
    std::size_t start = 0;
    while (start < list.size()) {
      auto comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      if (comma > start) {
        std::string eperr;
        const auto ep =
            cluster::ParseEndpoint(list.substr(start, comma - start), &eperr);
        if (!ep) {
          std::cerr << "cortex_loadgen: --endpoints: " << eperr << "\n";
          return 1;
        }
        endpoints.push_back(*ep);
      }
      start = comma + 1;
    }
    if (endpoints.empty()) {
      cluster::NodeEndpoint ep;
      ep.unix_path = unix_path;
      ep.host = host;
      ep.port = port;
      endpoints.push_back(ep);
    }
  }

  std::string error;
  const auto world = BuildServingWorld(flags, &error);
  if (!world) {
    std::cerr << "cortex_loadgen: " << error << "\n";
    return 1;
  }

  // The replayed request stream: every tool query of every task, in task
  // order, optionally capped by --requests.
  std::vector<const std::string*> queries;
  for (const auto& task : world->bundle.tasks) {
    for (const auto& step : task.steps) queries.push_back(&step.query);
  }
  const auto cap = static_cast<std::size_t>(
      flags.GetInt("requests", static_cast<std::int64_t>(queries.size())));
  queries.resize(std::min(cap, queries.size()));
  if (queries.empty()) {
    std::cerr << "cortex_loadgen: workload has no queries\n";
    return 1;
  }

  // Skewed replay: zipf(S) over query ranks (rank 0 hottest), the key
  // popularity a cluster's ring has to absorb without hot-spotting.
  std::optional<ZipfSampler> zipf;
  if (skew > 0.0) zipf.emplace(queries.size(), skew);

  // Tenant sampling: zipf over tenant ranks ("t0" hottest); skew <= 0
  // degrades to near-uniform via a tiny exponent.
  std::optional<ZipfSampler> tenant_zipf;
  if (tenant_count > 1) {
    tenant_zipf.emplace(tenant_count, std::max(tenant_skew, 1e-6));
  }
  std::vector<std::string> tenant_ids;
  tenant_ids.reserve(tenant_count);
  for (std::size_t i = 0; i < tenant_count; ++i) {
    tenant_ids.push_back("t" + std::to_string(i));
  }

  const GroundTruthOracle& oracle = *world->bundle.oracle;
  std::mutex merge_mu;
  ThreadResult total;
  std::vector<std::thread> pool;
  const double start = NowSec();

  // Mid-run monitor: every --stats-interval seconds, fetch STATS over its
  // own connection and print a one-line live digest of the server's
  // telemetry registry (the acceptance path for "queryable while
  // serving").
  const double stats_interval = flags.GetDouble("stats-interval", 0.0);
  std::atomic<bool> monitor_stop{false};
  std::thread monitor;
  if (stats_interval > 0.0) {
    monitor = std::thread([&] {
      const auto period = std::chrono::duration<double>(stats_interval);
      while (!monitor_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(period);
        if (monitor_stop.load(std::memory_order_acquire)) break;
        std::string merr;
        const auto stats = FetchStats(endpoints.front(), &merr);
        if (!stats) {
          std::fprintf(stderr, "[monitor] STATS failed: %s\n", merr.c_str());
          continue;
        }
        std::fprintf(
            stderr,
            "[monitor t=%.1fs] hits=%s misses=%s judger_rejects=%s "
            "evictions=%s probe_p50=%ss probe_p99=%ss e2e_p50=%ss "
            "e2e_p99=%ss queue_depth=%s\n",
            NowSec() - start, StatValue(*stats, "cortex_engine_hits").c_str(),
            StatValue(*stats, "cortex_engine_misses").c_str(),
            StatValue(*stats, "cortex_engine_judger_rejects").c_str(),
            StatValue(*stats, "cortex_cache_evictions").c_str(),
            StatValue(*stats, "cortex_engine_probe_seconds_p50").c_str(),
            StatValue(*stats, "cortex_engine_probe_seconds_p99").c_str(),
            StatValue(*stats, "cortex_server_request_seconds_p50").c_str(),
            StatValue(*stats, "cortex_server_request_seconds_p99").c_str(),
            StatValue(*stats, "cortex_server_queue_depth").c_str());
      }
    });
  }

  for (std::size_t tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      ThreadResult local;
      local.tenants.resize(tenant_count);
      BlockingClient client;
      std::string err;
      Rng rng(seed * 0x9e3779b97f4a7c15ULL + tid);
      // Open loop: this thread owns a 1/threads slice of the aggregate
      // Poisson process; arrivals are scheduled ahead of time and never
      // pushed back by a slow response.
      const double per_thread_rate =
          open_loop ? arrival_rate / static_cast<double>(threads) : 0.0;
      double next_arrival = start;
      if (!Connect(client, endpoints[tid % endpoints.size()], &err)) {
        NoteError(local, "connect: " + err);
      } else {
        for (std::size_t n = tid; n < queries.size(); n += threads) {
          if (open_loop) {
            next_arrival += rng.Exponential(per_thread_rate);
            const double now = NowSec();
            if (next_arrival > now) {
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(next_arrival - now));
            }
          }
          const std::size_t qi = zipf ? zipf->Sample(rng) : n;
          const std::string& query = *queries[qi];
          std::size_t trank = 0;
          TenantStats* tstats = nullptr;
          Request lookup;
          if (tenant_count > 0) {
            trank = tenant_zipf ? tenant_zipf->Sample(rng) : 0;
            tstats = &local.tenants[trank];
            lookup.type = RequestType::kTenantLookup;
            lookup.tenant = tenant_ids[trank];
          } else {
            lookup.type = RequestType::kLookup;
          }
          lookup.query = query;
          // Open loop measures from the scheduled arrival (coordinated
          // omission correction); closed loop from the send.
          const double t0 = open_loop ? next_arrival : NowSec();
          const auto response = client.Call(lookup, &err);
          const double lookup_sec = NowSec() - t0;
          local.lookup_latency.Add(lookup_sec);
          if (tstats != nullptr) tstats->lookup_latency.Add(lookup_sec);
          if (!response) {
            NoteError(local, "lookup: " + err);
            break;  // transport is gone
          }
          switch (response->type) {
            case ResponseType::kHit:
              ++local.hits;
              if (tstats != nullptr) ++tstats->hits;
              if (!oracle.InfoCorrect(query, response->value)) {
                ++local.wrong_hits;
              }
              continue;
            case ResponseType::kMiss:
              ++local.misses;
              if (tstats != nullptr) ++tstats->misses;
              break;
            case ResponseType::kBusy:
              ++local.busy;
              if (tstats != nullptr) ++tstats->busy;
              continue;
            default:
              NoteError(local, "unexpected lookup response");
              continue;
          }
          if (!insert_on_miss) continue;
          // Miss path: fetch from the "remote service" (the oracle) and
          // populate the cache, as the agent application would.
          Request insert;
          if (tenant_count > 0) {
            insert.type = RequestType::kTenantInsert;
            insert.tenant = tenant_ids[trank];
          } else {
            insert.type = RequestType::kInsert;
          }
          insert.key = query;
          insert.value = oracle.ExpectedInfo(query);
          insert.staticity = oracle.Staticity(query);
          if (insert.value.empty()) continue;  // unknown query
          const double t1 = NowSec();
          const auto insert_response = client.Call(insert, &err);
          local.insert_latency.Add(NowSec() - t1);
          if (!insert_response) {
            NoteError(local, "insert: " + err);
            break;
          }
          switch (insert_response->type) {
            case ResponseType::kOk:
              ++local.inserts_ok;
              break;
            case ResponseType::kReject:
              ++local.inserts_rejected;
              break;
            case ResponseType::kBusy:
              ++local.busy;
              if (tstats != nullptr) ++tstats->busy;
              break;
            default:
              NoteError(local, "unexpected insert response");
              break;
          }
        }
      }
      std::lock_guard<std::mutex> lk(merge_mu);
      total.Merge(local);
    });
  }
  for (auto& t : pool) t.join();
  const double wall = NowSec() - start;
  monitor_stop.store(true, std::memory_order_release);
  if (monitor.joinable()) monitor.join();

  // The histograms count one entry per wire round-trip, so they are the
  // exact op counts (BUSY responses included, whichever op drew them).
  const std::uint64_t lookups = total.lookup_latency.count();
  const std::uint64_t requests = lookups + total.insert_latency.count();
  const double hit_rate =
      (total.hits + total.misses)
          ? static_cast<double>(total.hits) /
                static_cast<double>(total.hits + total.misses)
          : 0.0;

  std::cout << "=== cortex_loadgen: " << world->bundle.name << " x "
            << queries.size() << " queries, " << threads
            << " client threads ===\n\n";
  TextTable summary({"metric", "value"});
  summary.AddRow({"wall clock (s)", TextTable::Num(wall, 2)});
  summary.AddRow({"requests", std::to_string(requests)});
  summary.AddRow(
      {"throughput (req/s)",
       TextTable::Num(wall > 0 ? static_cast<double>(requests) / wall : 0.0,
                      1)});
  if (open_loop) {
    summary.AddRow({"offered rate (req/s)", TextTable::Num(arrival_rate, 1)});
  }
  summary.AddRow({"lookups", std::to_string(lookups)});
  summary.AddRow({"hit rate", TextTable::Percent(hit_rate)});
  summary.AddRow({"wrong hits", std::to_string(total.wrong_hits)});
  summary.AddRow({"inserts ok / rejected",
                  std::to_string(total.inserts_ok) + " / " +
                      std::to_string(total.inserts_rejected)});
  summary.AddRow({"busy responses", std::to_string(total.busy)});
  summary.AddRow({"protocol errors", std::to_string(total.protocol_errors)});
  summary.Print(std::cout, /*csv=*/false);

  std::cout << "\nlatency (ms):\n";
  TextTable latency({"op", "count", "p50", "p90", "p99", "p999", "max"});
  for (const auto& [name, h] :
       {std::pair<const char*, const Histogram*>{"LOOKUP",
                                                 &total.lookup_latency},
        {"INSERT", &total.insert_latency}}) {
    if (h->count() == 0) continue;
    latency.AddRow({name, std::to_string(h->count()), Ms(h->p50()),
                    Ms(h->Quantile(0.90)), Ms(h->p99()),
                    Ms(h->Quantile(0.999)), Ms(h->max())});
  }
  latency.Print(std::cout, /*csv=*/false);

  // Isolation frontier: how each tenant fared.  Under --tenant-skew the
  // hot tenant (t0) saturates its quota (BUSY climbs) while the cold
  // tenants' hit rate and p99 should hold steady.
  if (!total.tenants.empty()) {
    std::cout << "\nper-tenant (isolation frontier):\n";
    TextTable per_tenant(
        {"tenant", "lookups", "hit rate", "busy", "p50 ms", "p99 ms"});
    for (std::size_t i = 0; i < total.tenants.size(); ++i) {
      const TenantStats& t = total.tenants[i];
      const std::uint64_t settled = t.hits + t.misses;
      per_tenant.AddRow(
          {"t" + std::to_string(i),
           std::to_string(t.lookup_latency.count()),
           settled ? TextTable::Percent(static_cast<double>(t.hits) /
                                        static_cast<double>(settled))
                   : "-",
           std::to_string(t.busy),
           t.lookup_latency.count() ? Ms(t.lookup_latency.p50()) : "-",
           t.lookup_latency.count() ? Ms(t.lookup_latency.p99()) : "-"});
    }
    per_tenant.Print(std::cout, /*csv=*/false);
  }

  // End-of-run registry printout: the server's full cortex_* telemetry as
  // seen over the wire.
  {
    std::string serr;
    const auto stats = FetchStats(endpoints.front(), &serr);
    if (stats) {
      // Cross-request batching digest: how well the server's pipeline
      // coalesced this run's arrivals (present only when cortexd ran with
      // --max-pipeline-batch > 1).
      if (StatValue(*stats, "cortex_pipeline_requests") != "-") {
        std::cout << "\npipeline batching (server):\n";
        TextTable batching({"metric", "value"});
        for (const char* key :
             {"cortex_pipeline_requests", "cortex_pipeline_batches",
              "cortex_pipeline_full_flushes",
              "cortex_pipeline_window_flushes",
              "cortex_pipeline_batch_size_mean",
              "cortex_pipeline_batch_size_p50",
              "cortex_pipeline_batch_size_p99",
              "cortex_pipeline_batch_size_max",
              "cortex_pipeline_stage_wait_seconds_p50",
              "cortex_pipeline_stage_wait_seconds_p99"}) {
          batching.AddRow({key, StatValue(*stats, key)});
        }
        batching.Print(std::cout, /*csv=*/false);
      }
      std::cout << "\nserver telemetry (cortex_*):\n";
      TextTable registry({"metric", "value"});
      for (const auto& [k, v] : stats->stats) {
        if (k.rfind("cortex_", 0) == 0) registry.AddRow({k, v});
      }
      registry.Print(std::cout, /*csv=*/false);
    } else {
      std::cerr << "cortex_loadgen: end-of-run STATS failed: " << serr
                << "\n";
    }
  }

  // Recent request traces from the server's flight recorder.
  const auto dump_traces =
      static_cast<std::uint64_t>(flags.GetInt("dump-traces", 0));
  if (dump_traces > 0) {
    BlockingClient client;
    std::string terr;
    if (Connect(client, endpoints.front(), &terr)) {
      Request dump;
      dump.type = RequestType::kDumpTrace;
      dump.max_traces = dump_traces;
      const auto response = client.Call(dump, &terr);
      if (response && response->type == ResponseType::kTraces) {
        std::cout << "\nflight recorder (" << response->id
                  << " traces, newest first):\n"
                  << response->message;
      } else {
        std::cerr << "cortex_loadgen: DUMPTRACE failed: " << terr << "\n";
      }
    } else {
      std::cerr << "cortex_loadgen: DUMPTRACE connect failed: " << terr
                << "\n";
    }
  }

  if (total.protocol_errors > 0) {
    std::cerr << "\nFAIL: " << total.protocol_errors
              << " protocol errors (first: " << total.first_error << ")\n";
    return 1;
  }
  return 0;
}
