// cortex_sim: config-driven experiment driver.
//
// Runs one serving experiment described by an INI config (see
// tools/configs/*.conf), printing a summary table and, when asked, CSV
// exports of per-task records and the latency CDF.  Command-line flags of
// the form --section.key=value override config entries, so sweeps are a
// shell loop away:
//
//   ./build/tools/cortex_driver tools/configs/musique_cortex.conf
//       --cache.ratio=0.6 --export.records=/tmp/records.csv
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "sim/trace_export.h"
#include "workload/trace_io.h"
#include "util/config.h"
#include "util/flags.h"
#include "util/table.h"

using namespace cortex;
using namespace cortex::bench;

namespace {

WorkloadBundle BuildWorkload(const Config& config) {
  const std::string type = config.GetString("workload.type", "skewed");
  if (type == "skewed") {
    const std::string dataset =
        config.GetString("workload.dataset", "hotpotqa");
    SearchDatasetProfile profile;
    if (dataset == "zilliz-gpt") profile = SearchDatasetProfile::ZillizGpt();
    else if (dataset == "hotpotqa") profile = SearchDatasetProfile::HotpotQa();
    else if (dataset == "musique") profile = SearchDatasetProfile::Musique();
    else if (dataset == "2wiki") profile = SearchDatasetProfile::TwoWiki();
    else if (dataset == "strategyqa") profile = SearchDatasetProfile::StrategyQa();
    else throw std::invalid_argument("unknown workload.dataset: " + dataset);
    profile.num_tasks = static_cast<std::size_t>(
        config.GetInt("workload.tasks", 1000));
    profile.zipf_exponent =
        config.GetDouble("workload.zipf", profile.zipf_exponent);
    profile.universe.num_topics = static_cast<std::size_t>(config.GetInt(
        "workload.topics",
        static_cast<std::int64_t>(profile.universe.num_topics)));
    return BuildSkewedSearchWorkload(profile);
  }
  if (type == "trend") {
    TrendProfile profile;
    profile.duration_sec =
        config.GetDouble("workload.duration", profile.duration_sec);
    profile.peak_rate = config.GetDouble("workload.peak", profile.peak_rate);
    return BuildTrendWorkload(profile);
  }
  if (type == "swebench") {
    SweBenchProfile profile;
    profile.num_issues = static_cast<std::size_t>(
        config.GetInt("workload.issues", 300));
    return BuildSweBenchWorkload(profile);
  }
  if (type == "trace") {
    // Replay a frozen trace file (see [export] trace=... to record one).
    return LoadWorkloadTraceFile(config.GetString("workload.path"));
  }
  throw std::invalid_argument("unknown workload.type: " + type);
}

ExperimentConfig BuildExperiment(const Config& config) {
  ExperimentConfig experiment;

  const std::string system = config.GetString("system.kind", "cortex");
  if (system == "vanilla") experiment.system = System::kVanilla;
  else if (system == "exact") experiment.system = System::kExact;
  else if (system == "ann-only") experiment.system = System::kAnnOnly;
  else if (system == "cortex") experiment.system = System::kCortex;
  else throw std::invalid_argument("unknown system.kind: " + system);

  experiment.cache_ratio = config.GetDouble("cache.ratio", 0.4);
  experiment.prefetch_enabled = config.GetBool("cache.prefetch", true);
  experiment.recalibration_enabled =
      config.GetBool("cache.recalibration", true);
  const std::string eviction = config.GetString("cache.eviction", "lcfu");
  if (eviction == "lcfu") experiment.eviction = EvictionKind::kLcfu;
  else if (eviction == "lru") experiment.eviction = EvictionKind::kLru;
  else if (eviction == "lfu") experiment.eviction = EvictionKind::kLfu;
  else throw std::invalid_argument("unknown cache.eviction: " + eviction);
  const std::string index = config.GetString("cache.index", "flat");
  if (index == "flat") experiment.engine.index_type = IndexType::kFlat;
  else if (index == "ivf") experiment.engine.index_type = IndexType::kIvf;
  else if (index == "hnsw") experiment.engine.index_type = IndexType::kHnsw;
  else if (index == "pq") experiment.engine.index_type = IndexType::kPq;
  else throw std::invalid_argument("unknown cache.index: " + index);
  experiment.engine.cache.sine.tau_sim =
      config.GetDouble("cache.tau_sim", experiment.engine.cache.sine.tau_sim);
  experiment.engine.cache.sine.tau_lsm =
      config.GetDouble("cache.tau_lsm", experiment.engine.cache.sine.tau_lsm);

  const std::string arrival = config.GetString("driver.arrival", "open");
  if (arrival == "open") {
    experiment.driver = OpenLoop(config.GetDouble("driver.rate", 2.0));
  } else if (arrival == "closed") {
    experiment.driver = ClosedLoop(static_cast<std::size_t>(
        config.GetInt("driver.concurrency", 8)));
  } else {
    throw std::invalid_argument("unknown driver.arrival: " + arrival);
  }

  const std::string service = config.GetString("service.kind", "google");
  if (service == "google") {
    experiment.service = RemoteDataService::GoogleSearchApi();
  } else if (service == "rag") {
    experiment.service = RemoteDataService::SelfHostedRag(
        config.GetBool("service.rate_limited", false));
  } else {
    throw std::invalid_argument("unknown service.kind: " + service);
  }
  if (config.Has("service.rate_limit_per_min")) {
    experiment.service.rate_limit_per_min =
        config.GetDouble("service.rate_limit_per_min", 100.0);
  }
  experiment.service.transient_failure_probability =
      config.GetDouble("service.failure_probability", 0.0);
  return experiment;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    if (flags.positional().empty()) {
      std::cerr << "usage: cortex_driver <config.conf> [--section.key=value ...]"
                << "\n";
      return 2;
    }
    Config config = Config::FromFile(flags.positional().front());
    // Command-line overrides: every --a.b=v flag lands in the config.
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) continue;
      config.Set(std::string(arg.substr(0, eq)),
                 std::string(arg.substr(eq + 1)));
    }

    const WorkloadBundle bundle = BuildWorkload(config);
    if (const auto path = config.GetString("export.trace"); !path.empty()) {
      SaveWorkloadTraceFile(bundle, path);
      std::cout << "froze workload trace to " << path << '\n';
    }
    const ExperimentConfig experiment = BuildExperiment(config);
    const ExperimentResult result = RunExperiment(bundle, experiment);

    TextTable table({"metric", "value"});
    table.AddRow({"workload", bundle.name});
    table.AddRow({"system", SystemName(experiment.system)});
    table.AddRow({"tasks", std::to_string(result.metrics.completed_tasks())});
    table.AddRow({"throughput (req/s)",
                  TextTable::Num(result.metrics.Throughput())});
    table.AddRow({"cache hit rate",
                  TextTable::Percent(result.metrics.CacheHitRate())});
    table.AddRow({"EM accuracy",
                  TextTable::Percent(result.metrics.Accuracy())});
    table.AddRow({"mean latency (s)",
                  TextTable::Num(result.metrics.MeanLatency(), 3)});
    table.AddRow({"p99 latency (s)",
                  TextTable::Num(result.metrics.P99Latency(), 3)});
    table.AddRow({"API calls", std::to_string(result.api_calls)});
    table.AddRow({"retry ratio", TextTable::Percent(result.retry_ratio)});
    table.AddRow({"API cost ($)", TextTable::Num(result.api_cost_dollars, 3)});
    table.AddRow({"prefetches", std::to_string(result.prefetches)});
    std::cout << table.Render();

    if (const auto path = config.GetString("export.records"); !path.empty()) {
      WriteTaskRecordsCsvFile(result.metrics, path);
      std::cout << "wrote per-task records to " << path << '\n';
    }
    if (const auto path = config.GetString("export.summary"); !path.empty()) {
      std::ofstream out(path, std::ios::app);
      WriteSummaryCsv(result.metrics, out,
                      bundle.name + "/" + SystemName(experiment.system),
                      /*include_header=*/out.tellp() == 0);
      std::cout << "appended summary to " << path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cortex_driver: " << e.what() << '\n';
    return 1;
  }
}
