// cortexd: the Cortex cache server.  Runs the concurrent sharded engine
// behind the length-prefixed wire protocol (serve/protocol.h) on TCP or a
// Unix-domain socket, and shuts down gracefully on SIGINT/SIGTERM.
//
//   cortexd --workload=musique --tasks=1000 --shards=4 --workers=4
//           --port=8377 --cache-ratio=0.4
//   cortexd --unix=/tmp/cortexd.sock --rate-limit=200
//
// The workload flags pick which deterministic world the server judges
// against (see serve/serving_world.h) — run cortex_loadgen with the same
// workload flags on the other side.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>

#include "embedding/simd_kernels.h"
#include "serve/concurrent_engine.h"
#include "serve/server.h"
#include "serve/serving_world.h"
#include "telemetry/metrics.h"
#include "util/flags.h"

using namespace cortex;
using namespace cortex::serve;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

void PrintUsage() {
  std::cout <<
      "cortexd — Cortex cache server\n"
      "  workload:  --workload=musique|zilliz|hotpotqa|2wiki|strategyqa|"
      "swebench\n"
      "             --tasks=1000 --seed=S | --trace=PATH\n"
      "  engine:    --shards=4 --cache-ratio=0.4 --housekeeping-sec=1\n"
      "             --recalibrate-sec=0 (0 = off)\n"
      "  tenancy:   --tenant-budget-fraction=1 (per-tenant share of each\n"
      "             shard's capacity; >=1 = unlimited)\n"
      "             --tenant-rate-limit=0 (req/s per tenant, 0 = unlimited)\n"
      "             --tenant-rate-burst=64\n"
      "             --tenant-promote-k=0 (distinct tenants required to\n"
      "             graduate an SE to the shared pool; 0 = promotion off)\n"
      "             --tenant-promote-staticity=8 (min staticity to promote)\n"
      "  listen:    --port=8377 (--port=0 for ephemeral) --host=127.0.0.1\n"
      "             --unix=PATH (overrides TCP)\n"
      "  serving:   --workers=4 --rate-limit=0 (req/s, 0 = unlimited)\n"
      "             --max-pending=64 --max-pipeline=64\n"
      "             --max-pipeline-batch=1 (cross-request lookup batching;\n"
      "             >1 enables) --batch-window-us=200 --pipeline-threads=2\n"
      "             --max-frame-mb=64 (largest accepted frame; cluster\n"
      "             RESTORE blobs need headroom) --drain-sec=5\n"
      "  telemetry: --metrics-interval=0 (sec between registry dumps, "
      "0 = off)\n"
      "             --metrics-file=PATH (append dumps there instead of "
      "stderr)\n"
      "             --flight-recorder=256 (traces retained for DUMPTRACE)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("help")) {
    PrintUsage();
    return 0;
  }

  std::string error;
  auto world = BuildServingWorld(flags, &error);
  if (!world) {
    std::cerr << "cortexd: " << error << "\n";
    return 1;
  }

  ConcurrentEngineOptions eopts;
  eopts.num_shards = static_cast<std::size_t>(flags.GetInt("shards", 4));
  eopts.cache.capacity_tokens = flags.GetDouble("cache-ratio", 0.4) *
                                world->bundle.TotalKnowledgeTokens();
  eopts.housekeeping_interval_sec = flags.GetDouble("housekeeping-sec", 1.0);
  eopts.recalibration_interval_sec = flags.GetDouble("recalibrate-sec", 0.0);
  eopts.tenants.default_quota.budget_fraction =
      flags.GetDouble("tenant-budget-fraction", 1.0);
  eopts.tenants.default_quota.rate_per_sec =
      flags.GetDouble("tenant-rate-limit", 0.0);
  eopts.tenants.default_quota.rate_burst =
      flags.GetDouble("tenant-rate-burst", 64.0);
  eopts.cache.promote_distinct_tenants =
      static_cast<std::size_t>(flags.GetInt("tenant-promote-k", 0));
  eopts.cache.promote_min_staticity =
      flags.GetDouble("tenant-promote-staticity", 8.0);
  ConcurrentShardedEngine engine(&world->embedder, world->judger.get(),
                                 eopts);
  // Recalibration fetches ground truth the way production fetches from the
  // remote service: through the workload's oracle.
  engine.SetGroundTruthFetcher(
      [oracle = world->bundle.oracle](std::string_view query) {
        return oracle->ExpectedInfo(query);
      });

  ServerOptions sopts;
  sopts.unix_path = flags.GetString("unix");
  sopts.host = flags.GetString("host", "127.0.0.1");
  sopts.port = static_cast<int>(flags.GetInt("port", 8377));
  sopts.num_workers = static_cast<std::size_t>(flags.GetInt("workers", 4));
  sopts.max_pending_connections =
      static_cast<std::size_t>(flags.GetInt("max-pending", 64));
  sopts.max_pipeline =
      static_cast<std::size_t>(flags.GetInt("max-pipeline", 64));
  sopts.max_requests_per_sec = flags.GetDouble("rate-limit", 0.0);
  sopts.max_pipeline_batch =
      static_cast<std::size_t>(flags.GetInt("max-pipeline-batch", 1));
  sopts.batch_window_us =
      static_cast<std::uint64_t>(flags.GetInt("batch-window-us", 200));
  sopts.pipeline_threads =
      static_cast<std::size_t>(flags.GetInt("pipeline-threads", 2));
  sopts.max_frame_bytes =
      static_cast<std::size_t>(flags.GetInt("max-frame-mb", 64)) << 20;
  sopts.flight_recorder_capacity =
      static_cast<std::size_t>(flags.GetInt("flight-recorder", 256));

  CortexServer server(&engine, sopts);
  if (!server.Start(&error)) {
    std::cerr << "cortexd: " << error << "\n";
    return 1;
  }

  // Periodic registry dump: Prometheus-style text to stderr (or appended
  // to --metrics-file), on its own thread so serving is never blocked.
  const double metrics_interval = flags.GetDouble("metrics-interval", 0.0);
  const std::string metrics_file = flags.GetString("metrics-file");
  std::atomic<bool> metrics_stop{false};
  std::thread metrics_thread;
  if (metrics_interval > 0.0) {
    metrics_thread = std::thread([&] {
      const auto period = std::chrono::duration<double>(metrics_interval);
      while (!metrics_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(period);
        if (metrics_stop.load(std::memory_order_acquire)) break;
        const std::string text = server.registry()->Snapshot().RenderText();
        if (metrics_file.empty()) {
          std::fprintf(stderr, "--- metrics t=%.1fs ---\n%s",
                       telemetry::WallSeconds(), text.c_str());
        } else if (std::FILE* f = std::fopen(metrics_file.c_str(), "a")) {
          std::fprintf(f, "--- metrics t=%.1fs ---\n%s",
                       telemetry::WallSeconds(), text.c_str());
          std::fclose(f);
        }
      }
    });
  }

  if (!sopts.unix_path.empty()) {
    std::cout << "cortexd listening on unix:" << sopts.unix_path;
  } else {
    std::cout << "cortexd listening on " << sopts.host << ":"
              << server.port();
  }
  std::cout << "  (workload=" << world->bundle.name
            << ", shards=" << eopts.num_shards
            << ", workers=" << sopts.num_workers << ", capacity="
            << static_cast<long long>(eopts.cache.capacity_tokens)
            << " tokens, simd="
            << simd::VariantName(simd::ActiveVariant()) << ")\n"
            << "Ctrl-C to stop.\n"
            << std::flush;

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "\ncortexd: draining...\n";
  // Drain, don't yank: in-flight requests get their responses flushed
  // before the sockets close, so a restart mid-rebalance never truncates a
  // frame a migration peer is waiting on.
  server.Drain(flags.GetDouble("drain-sec", 5.0));
  metrics_stop.store(true, std::memory_order_release);
  if (metrics_thread.joinable()) metrics_thread.join();
  engine.StopHousekeeping();

  // Final registry flush: the last dump lands in --metrics-file even when
  // the periodic thread never ticked between the signal and the exit.
  if (!metrics_file.empty()) {
    if (std::FILE* f = std::fopen(metrics_file.c_str(), "a")) {
      std::fprintf(f, "--- metrics t=%.1fs (final) ---\n%s",
                   telemetry::WallSeconds(),
                   server.registry()->Snapshot().RenderText().c_str());
      std::fflush(f);
      std::fclose(f);
    }
  }

  const ServerStats ss = server.stats();
  const ConcurrentEngineStats es = engine.Stats();
  std::printf(
      "connections: %llu accepted, %llu rejected\n"
      "requests:    %llu served, %llu busy, %llu protocol errors\n"
      "engine:      %llu lookups (%llu hits, %.1f%%), %llu inserts, "
      "%llu entries resident\n"
      "background:  %llu housekeeping runs, %llu expired removed, "
      "%llu recalibrations\n",
      static_cast<unsigned long long>(ss.connections_accepted),
      static_cast<unsigned long long>(ss.connections_rejected),
      static_cast<unsigned long long>(ss.requests_served),
      static_cast<unsigned long long>(ss.requests_busy),
      static_cast<unsigned long long>(ss.protocol_errors),
      static_cast<unsigned long long>(es.lookups),
      static_cast<unsigned long long>(es.hits),
      es.lookups ? 100.0 * static_cast<double>(es.hits) /
                       static_cast<double>(es.lookups)
                 : 0.0,
      static_cast<unsigned long long>(es.inserts),
      static_cast<unsigned long long>(engine.TotalSize()),
      static_cast<unsigned long long>(es.housekeeping_runs),
      static_cast<unsigned long long>(es.expired_removed),
      static_cast<unsigned long long>(es.recalibrations));
  std::printf("--- final metrics ---\n%s",
              server.registry()->Snapshot().RenderText().c_str());
  return 0;
}
